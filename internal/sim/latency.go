package sim

import (
	"math/rand"
	"time"
)

// Latency models for the three systems compared in Figures 15 and 16.
// Constants are calibrated to the paper's published measurements:
//
//   - InfiniCache: ~13 ms warm Lambda invoke (§5.1) + proxy hop + the
//     per-chunk transfer at the memory-dependent Lambda bandwidth
//     (50-160 MB/s) + EC decode. 100 MB at RS(10+2)/1.5 GB lands in the
//     100-200 ms band of Figure 11(e/f).
//   - ElastiCache: sub-millisecond floor plus a single-threaded service
//     rate; IC ≈ EC for 1-100 MB and IC < EC above ~100 MB (Figure 16).
//   - S3: tens of ms to first byte plus a modest single-stream
//     bandwidth, giving the >=100x gap on large objects (Figure 15b).
type latencyModel struct {
	rng *rand.Rand
}

func (lm *latencyModel) jitter(base time.Duration, sigma float64) time.Duration {
	m := 1 + lm.rng.NormFloat64()*sigma
	if m < 0.6 {
		m = 0.6
	}
	return time.Duration(float64(base) * m)
}

// InfiniCache GET latency for an object of size bytes under RS(d+p)
// with nodeBandwidth the per-Lambda bytes/second.
func (lm *latencyModel) infiniCache(size int64, d int, nodeBandwidth float64, decode bool) time.Duration {
	const (
		invoke   = 13 * time.Millisecond // warm Lambda invocation
		proxyHop = 2 * time.Millisecond  // rendezvous + framing
	)
	chunk := float64(size) / float64(d)
	transfer := time.Duration(chunk / nodeBandwidth * float64(time.Second))
	// First-d parallelism: chunks move concurrently; the slowest of d
	// in-flight chunks dominates, captured by the jitter tail.
	lat := invoke + proxyHop + lm.jitter(transfer, 0.18)
	if decode {
		// RS decode at ~1.5 GB/s over the object.
		lat += time.Duration(float64(size) / 1.5e9 * float64(time.Second))
	}
	return lat
}

// Hot-tier GET latency: proxy-memory chunks replayed straight down the
// client connection — no invoke, no node transfer. Calibrated to the
// PR 5 in-process measurements (~20 us for 1 KiB, ~0.66 ms for 1 MiB).
func (lm *latencyModel) hotTier(size int64) time.Duration {
	const floor = 20 * time.Microsecond
	const bandwidth = 1.6e9 // proxy memory -> client copy rate
	return lm.jitter(floor+time.Duration(float64(size)/bandwidth*float64(time.Second)), 0.10)
}

// ElastiCache GET latency (one big instance).
func (lm *latencyModel) elastiCache(size int64) time.Duration {
	const floor = 600 * time.Microsecond
	const serviceRate = 600e6 // single-threaded bulk throughput
	return floor + lm.jitter(time.Duration(float64(size)/serviceRate*float64(time.Second)), 0.10)
}

// S3 GET latency (single stream).
func (lm *latencyModel) s3(size int64) time.Duration {
	const firstByte = 30 * time.Millisecond
	const bandwidth = 8e6
	return lm.jitter(firstByte+time.Duration(float64(size)/bandwidth*float64(time.Second)), 0.15)
}
