// Package costmodel implements the paper's cost analysis (§4.3,
// Equations 4-6) and the pricing constants of §2.2, plus the
// ElastiCache/S3 comparators used by Figures 13 and 17.
//
// All amounts are US dollars.
package costmodel

import (
	"time"

	"infinicache/internal/lambdaemu"
)

// AWS Lambda pricing as quoted in §2.2 of the paper.
const (
	// PricePerInvocation: "$0.02 per 1 million invocations".
	PricePerInvocation = 0.02 / 1e6
	// PricePerGBSecond: "$0.0000166667 per second for each GB of RAM",
	// rounded up to the nearest 100 ms.
	PricePerGBSecond = 0.0000166667
)

// ElastiCache instance pricing (on-demand us-east-1 rates from the
// paper's era; $10.368/hour x 50 hours reproduces the paper's $518.40
// for cache.r5.24xlarge; smaller sizes scale linearly).
var ElastiCachePricePerHour = map[string]float64{
	"cache.r5.large":    0.216,
	"cache.r5.xlarge":   0.432,
	"cache.r5.8xlarge":  3.456,
	"cache.r5.24xlarge": 10.368,
}

// ElastiCacheMemoryGB maps instance types to usable memory (the paper
// quotes 635.61 GB for r5.24xlarge).
var ElastiCacheMemoryGB = map[string]float64{
	"cache.r5.large":    13.07,
	"cache.r5.xlarge":   26.32,
	"cache.r5.8xlarge":  209.55,
	"cache.r5.24xlarge": 635.61,
}

// LambdaCost prices a usage record: invocations plus GB-seconds (already
// ceil100-rounded by the ledger).
func LambdaCost(u lambdaemu.Usage) float64 {
	return float64(u.Invocations)*PricePerInvocation + u.GBSeconds*PricePerGBSecond
}

// Ceil100Seconds rounds a duration up to 100 ms steps and returns
// seconds — the ceil100(.) operator of Equation 4.
func Ceil100Seconds(d time.Duration) float64 {
	return lambdaemu.CeilBillingCycle(d).Seconds()
}

// Lambda describes one cache-node deployment for the analytic model.
type Lambda struct {
	Nodes    int     // Nλ, number of Lambda functions in the pool
	MemoryGB float64 // M
}

// ServingCost is Equation 4: Cser = n*creq + n*ceil100(t)/1000 * M * cd,
// generalised to per-hour cost given the hourly chunk-invocation rate
// and the per-invocation duration. nser counts Lambda invocations (one
// client GET of an RS(d+p) object costs up to d+p of them).
func (l Lambda) ServingCost(invocationsPerHour float64, perInvocation time.Duration) float64 {
	return invocationsPerHour*PricePerInvocation +
		invocationsPerHour*Ceil100Seconds(perInvocation)*l.MemoryGB*PricePerGBSecond
}

// WarmupCost is Equation 5: every node is re-invoked 60/Twarm times per
// hour; a warm-up runs a few ms, billed as one 100 ms cycle.
func (l Lambda) WarmupCost(warmInterval time.Duration) float64 {
	if warmInterval <= 0 {
		return 0
	}
	fw := float64(time.Hour) / float64(warmInterval)
	n := float64(l.Nodes)
	return n*fw*PricePerInvocation + n*fw*0.1*l.MemoryGB*PricePerGBSecond
}

// BackupCost is Equation 6: every node backs up 60/Tbak times per hour;
// each backup bills tbak of duration on the source and destination pair
// (captured as a single effective duration).
func (l Lambda) BackupCost(backupInterval, backupDuration time.Duration) float64 {
	if backupInterval <= 0 {
		return 0
	}
	fbak := float64(time.Hour) / float64(backupInterval)
	n := float64(l.Nodes)
	return n*fbak*PricePerInvocation +
		n*fbak*Ceil100Seconds(backupDuration)*l.MemoryGB*PricePerGBSecond
}

// HourlyCost composes Equations 4-6: C = Cser + Cw + Cbak.
func (l Lambda) HourlyCost(invocationsPerHour float64, perInvocation time.Duration,
	warmInterval, backupInterval, backupDuration time.Duration) float64 {
	return l.ServingCost(invocationsPerHour, perInvocation) +
		l.WarmupCost(warmInterval) +
		l.BackupCost(backupInterval, backupDuration)
}

// ElastiCacheHourly returns the hourly price of an instance type
// (0 for unknown types).
func ElastiCacheHourly(instanceType string) float64 {
	return ElastiCachePricePerHour[instanceType]
}

// CrossoverAccessRate finds the client-request rate (requests per hour)
// at which InfiniCache's hourly cost overtakes an ElastiCache instance
// (Figure 17: ~312 K requests/hour for the paper's configuration). Each
// client request fans out to chunksPerRequest Lambda invocations.
// Returns -1 if there is no crossover below maxRate.
func CrossoverAccessRate(l Lambda, chunksPerRequest int, perInvocation time.Duration,
	warmInterval, backupInterval, backupDuration time.Duration,
	elastiCacheHourly float64, maxRate float64) float64 {
	lo, hi := 0.0, maxRate
	cost := func(rate float64) float64 {
		return l.HourlyCost(rate*float64(chunksPerRequest), perInvocation,
			warmInterval, backupInterval, backupDuration)
	}
	if cost(hi) < elastiCacheHourly {
		return -1
	}
	for i := 0; i < 64; i++ {
		mid := (lo + hi) / 2
		if cost(mid) < elastiCacheHourly {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2
}
