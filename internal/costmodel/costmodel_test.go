package costmodel

import (
	"math"
	"testing"
	"time"

	"infinicache/internal/lambdaemu"
)

// The paper's production configuration: 400 x 1.5 GB Lambdas.
var paperPool = Lambda{Nodes: 400, MemoryGB: 1.5}

func TestLambdaCostFromLedger(t *testing.T) {
	l := lambdaemu.NewLedger()
	l.Record("f", 1536, 150*time.Millisecond) // billed 0.2s * 1.5GB = 0.3 GBs
	got := LambdaCost(l.Total())
	want := PricePerInvocation + 0.3*PricePerGBSecond
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("cost = %v, want %v", got, want)
	}
}

func TestCeil100Seconds(t *testing.T) {
	if Ceil100Seconds(130*time.Millisecond) != 0.2 {
		t.Fatal("ceil100(130ms) != 0.2s")
	}
	if Ceil100Seconds(0) != 0 {
		t.Fatal("ceil100(0) != 0")
	}
}

func TestWarmupCostEquation5(t *testing.T) {
	// Twarm = 1 min: fw = 60/hour. Cw = N*fw*creq + N*fw*0.1*M*cd.
	got := paperPool.WarmupCost(time.Minute)
	want := 400*60*PricePerInvocation + 400*60*0.1*1.5*PricePerGBSecond
	if math.Abs(got-want) > 1e-9 {
		t.Fatalf("warmup cost = %v, want %v", got, want)
	}
	// ~$0.06/hour: tiny, as Figure 13 shows.
	if got < 0.05 || got > 0.08 {
		t.Errorf("warmup cost/hour = $%.4f, expected ~$0.06", got)
	}
	if paperPool.WarmupCost(0) != 0 {
		t.Error("disabled warmup should cost 0")
	}
}

func TestBackupCostEquation6(t *testing.T) {
	// Tbak = 5 min: fbak = 12/hour; with ~2 s backups the backup cost
	// dominates (§5.2: "the backup cost is a dominating factor").
	got := paperPool.BackupCost(5*time.Minute, 2*time.Second)
	want := 400*12*PricePerInvocation + 400*12*2.0*1.5*PricePerGBSecond
	if math.Abs(got-want) > 1e-9 {
		t.Fatalf("backup cost = %v, want %v", got, want)
	}
	warm := paperPool.WarmupCost(time.Minute)
	if got < 3*warm {
		t.Errorf("backup ($%.3f) should dominate warm-up ($%.3f)", got, warm)
	}
	if paperPool.BackupCost(0, time.Second) != 0 {
		t.Error("disabled backup should cost 0")
	}
}

func TestFigure13TotalCostShape(t *testing.T) {
	// Reconstruct the headline comparison: over 50 hours, ElastiCache
	// (cache.r5.24xlarge) costs $518.40 while InfiniCache's total for
	// the all-objects workload lands in the tens of dollars — a >25x
	// cost-effectiveness gap.
	hours := 50.0
	ecTotal := ElastiCacheHourly("cache.r5.24xlarge") * hours
	if math.Abs(ecTotal-518.40) > 0.01 {
		t.Fatalf("ElastiCache 50h = $%.2f, paper says $518.40", ecTotal)
	}
	// All-objects workload: 3,654 GETs/hour x 12 chunk invocations,
	// ~100 ms per chunk invocation, Twarm=1min, Tbak=5min, ~2s backups.
	icHourly := paperPool.HourlyCost(3654*12, 100*time.Millisecond,
		time.Minute, 5*time.Minute, 2*time.Second)
	icTotal := icHourly * hours
	if icTotal < 10 || icTotal > 40 {
		t.Errorf("InfiniCache 50h = $%.2f, paper reports $20.52", icTotal)
	}
	ratio := ecTotal / icTotal
	if ratio < 15 || ratio > 50 {
		t.Errorf("cost-effectiveness = %.1fx, paper reports 31x (all objects)", ratio)
	}
}

func TestFigure13NoBackupCheaper(t *testing.T) {
	// Disabling backup must cut cost hard (paper: $16.51 -> $5.41 for
	// the large-only workload, 96x vs ElastiCache).
	withBak := paperPool.HourlyCost(750*12, 100*time.Millisecond,
		time.Minute, 5*time.Minute, 2*time.Second) * 50
	noBak := paperPool.HourlyCost(750*12, 100*time.Millisecond,
		time.Minute, 0, 0) * 50
	if noBak >= withBak/2 {
		t.Errorf("no-backup $%.2f vs backup $%.2f; paper shows a ~3x reduction", noBak, withBak)
	}
	ecTotal := ElastiCacheHourly("cache.r5.24xlarge") * 50
	if ratio := ecTotal / noBak; ratio < 50 {
		t.Errorf("no-backup cost-effectiveness %.0fx, paper reports 96x", ratio)
	}
}

func TestFigure13BackupDominatesLargeOnly(t *testing.T) {
	// §5.2: for large-only, backup+warmup ≈ 88.3% of total cost.
	serving := paperPool.ServingCost(750*12, 100*time.Millisecond)
	warm := paperPool.WarmupCost(time.Minute)
	bak := paperPool.BackupCost(5*time.Minute, 2*time.Second)
	frac := (warm + bak) / (serving + warm + bak)
	if frac < 0.75 || frac > 0.97 {
		t.Errorf("backup+warmup share = %.3f, paper reports ~0.883", frac)
	}
}

func TestFigure17Crossover(t *testing.T) {
	// The hourly cost curve crosses ElastiCache's $10.368 at ~312 K
	// client requests/hour (86 req/s) with 12-chunk requests.
	rate := CrossoverAccessRate(paperPool, 12, 100*time.Millisecond,
		time.Minute, 5*time.Minute, 2*time.Second,
		ElastiCacheHourly("cache.r5.24xlarge"), 1e6)
	if rate < 0 {
		t.Fatal("no crossover found")
	}
	if rate < 200_000 || rate > 450_000 {
		t.Errorf("crossover at %.0f req/hour, paper reports ~312K", rate)
	}
}

func TestCrossoverNoneBelowMax(t *testing.T) {
	// A tiny pool with negligible overheads stays cheaper than a huge
	// ElastiCache bill at any rate below the cap.
	small := Lambda{Nodes: 1, MemoryGB: 0.125}
	rate := CrossoverAccessRate(small, 1, 100*time.Millisecond, 0, 0, 0, 1e9, 1000)
	if rate != -1 {
		t.Fatalf("expected no crossover, got %v", rate)
	}
}

func TestHourlyCostMonotoneInRate(t *testing.T) {
	prev := -1.0
	for rate := 0.0; rate <= 400000; rate += 40000 {
		c := paperPool.HourlyCost(rate*12, 100*time.Millisecond,
			time.Minute, 5*time.Minute, 2*time.Second)
		if c < prev {
			t.Fatalf("cost not monotone at rate %.0f", rate)
		}
		prev = c
	}
}
