// Package netsim models network bandwidth in virtual time.
//
// The paper's latency results are shaped by two resources: each Lambda's
// memory-proportional bandwidth (50-160 MB/s between 128 MB and 3008 MB
// functions, §5 setup) and the shared NIC of the EC2 VM that hosts
// co-located functions (the contention behind Figure 4). netsim provides
// token-bucket style rate limiting on both, composed per connection, with
// all waiting done on a vclock.Clock so benchmarks can compress time.
package netsim

import (
	"net"
	"sync"
	"time"

	"infinicache/internal/vclock"
)

// Bucket is a fluid-model rate limiter: a transfer of n bytes occupies the
// link for n/rate seconds of virtual time, serialized with other transfers
// through the same bucket.
type Bucket struct {
	mu       sync.Mutex
	rate     float64 // bytes per virtual second
	nextFree time.Time
}

// NewBucket returns a bucket with the given rate in bytes per virtual
// second. A non-positive rate means unlimited.
func NewBucket(rate float64) *Bucket {
	return &Bucket{rate: rate}
}

// Rate returns the bucket's rate in bytes per virtual second (0 = unlimited).
func (b *Bucket) Rate() float64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.rate
}

// SetRate changes the bucket's rate.
func (b *Bucket) SetRate(rate float64) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.rate = rate
}

// Reserve books n bytes of transfer starting no earlier than now and
// returns the virtual completion delay (time until the transfer's last
// byte is on the wire).
func (b *Bucket) Reserve(now time.Time, n int) time.Duration {
	if n <= 0 {
		return 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.rate <= 0 {
		return 0
	}
	start := now
	if b.nextFree.After(start) {
		start = b.nextFree
	}
	dur := time.Duration(float64(n) / b.rate * float64(time.Second))
	b.nextFree = start.Add(dur)
	return b.nextFree.Sub(now)
}

// Path is a sequence of buckets a transfer must traverse plus a fixed
// one-way latency. The effective delay is the maximum of the per-bucket
// delays (the narrowest link dominates in a fluid model).
type Path struct {
	Clock   vclock.Clock
	Latency time.Duration
	Buckets []*Bucket
}

// Transfer blocks (in virtual time) for the duration needed to move n
// bytes across the path and returns that duration.
func (p *Path) Transfer(n int) time.Duration {
	delay := p.Latency
	now := p.Clock.Now()
	for _, b := range p.Buckets {
		if d := b.Reserve(now, n); d > delay {
			delay = d
		}
	}
	if delay > 0 {
		p.Clock.Sleep(delay)
	}
	return delay
}

// Conn wraps a net.Conn so every Write is throttled through a Path.
// Reads are not throttled; the sender side paces the wire.
type Conn struct {
	net.Conn
	path *Path
}

// NewConn wraps inner with the given path. A nil path disables throttling.
func NewConn(inner net.Conn, path *Path) *Conn {
	return &Conn{Conn: inner, path: path}
}

func (c *Conn) Write(b []byte) (int, error) {
	if c.path != nil {
		c.path.Transfer(len(b))
	}
	return c.Conn.Write(b)
}

// BandwidthForMemory returns the modeled Lambda function bandwidth in
// bytes per second for a function with memMB megabytes of memory,
// interpolating the paper's observed 50 MB/s at 128 MB up to 160 MB/s at
// and above 1024 MB (larger functions "eliminate the network bottleneck",
// §5.1, with the latency plateau above 1024 MB).
func BandwidthForMemory(memMB int) float64 {
	const (
		minMB = 128.0
		maxMB = 1024.0
		minBW = 50e6
		maxBW = 160e6
	)
	m := float64(memMB)
	if m <= minMB {
		return minBW
	}
	if m >= maxMB {
		return maxBW
	}
	frac := (m - minMB) / (maxMB - minMB)
	return minBW + frac*(maxBW-minBW)
}

// HostBandwidth is the modeled aggregate NIC bandwidth of a Lambda-hosting
// VM (bytes per virtual second). It caps the sum of co-located function
// transfers, producing the contention measured in Figure 4.
const HostBandwidth = 200e6
