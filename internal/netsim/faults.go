package netsim

import (
	"fmt"
	"math/rand"
	"net"
	"sync"
	"time"

	"infinicache/internal/vclock"
)

// Fault kinds injectable on a simulated link. Each rule names a tag
// pattern (connections are tagged at creation, e.g. with the Lambda
// function name they serve) and an expiry in virtual time, so a chaos
// schedule can open and close fault windows deterministically.
const (
	// FaultLatency delays every matching Write by a fixed extra amount
	// of virtual time (a slow / black-holed node).
	FaultLatency = "latency"
	// FaultCorrupt flips bits in matching writes at a per-write
	// probability — garbled frames in transit. The corruption happens in
	// a copy; the caller's buffer (often a shared prebuilt wire image)
	// is never mutated.
	FaultCorrupt = "corrupt"
	// FaultRot flips bits in matching *reads* at a per-read probability:
	// data is damaged on its way into the node, so the store keeps
	// garbage — the persistent-corruption case that only erasure repair
	// can heal.
	FaultRot = "rot"
	// FaultHangup kills a matching connection mid-write: half the bytes
	// go out, then the socket closes — a truncated frame followed by a
	// connection drop.
	FaultHangup = "hangup"
	// FaultRefuse makes new dials for matching tags fail (consulted by
	// the dialer, not the conn).
	FaultRefuse = "refuse"
)

type faultRule struct {
	pattern string // tag pattern: exact, or prefix with trailing '*', or "*"
	kind    string
	rate    float64       // per-call probability for corrupt/rot/hangup
	extra   time.Duration // added write delay for latency rules
	until   time.Time     // virtual expiry; zero = forever
}

// MatchTag reports whether tag matches pattern: "*" matches anything, a
// trailing '*' matches by prefix, anything else matches exactly. Shared
// by the fault rules, the chaos scheduler, and lambdaemu's reclaim
// storms so one target syntax names nodes everywhere.
func MatchTag(pattern, tag string) bool {
	if pattern == "*" || pattern == tag {
		return true
	}
	if n := len(pattern); n > 0 && pattern[n-1] == '*' {
		return len(tag) >= n-1 && tag[:n-1] == pattern[:n-1]
	}
	return false
}

// Faults is a seeded, virtual-time fault rule set consulted by tagged
// Conns on every Read/Write and by dialers before connecting. All
// randomness flows from one seeded source, so a fixed schedule replays
// the same fault stream for the same interleaving of transfers.
type Faults struct {
	clock vclock.Clock

	mu       sync.Mutex
	rng      *rand.Rand
	rules    []faultRule
	injected map[string]int64
}

// NewFaults returns an empty fault set on the given clock.
func NewFaults(clock vclock.Clock, seed int64) *Faults {
	return &Faults{
		clock:    clock,
		rng:      rand.New(rand.NewSource(seed)),
		injected: make(map[string]int64),
	}
}

// Add installs a rule. kind is one of the Fault* constants; rate is the
// per-call injection probability (ignored for latency rules), extra the
// added delay (latency rules only), and window how long the rule lives
// in virtual time (0 = forever).
func (f *Faults) Add(pattern, kind string, rate float64, extra, window time.Duration) {
	var until time.Time
	if window > 0 {
		until = f.clock.Now().Add(window)
	}
	f.mu.Lock()
	f.rules = append(f.rules, faultRule{pattern: pattern, kind: kind, rate: rate, extra: extra, until: until})
	f.mu.Unlock()
}

// Counts snapshots the per-kind injected-fault counters.
func (f *Faults) Counts() map[string]int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make(map[string]int64, len(f.injected))
	for k, v := range f.injected {
		out[k] = v
	}
	return out
}

// Injected returns the total faults injected across all kinds.
func (f *Faults) Injected() int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	var n int64
	for _, v := range f.injected {
		n += v
	}
	return n
}

// Refused reports (and counts) whether a new dial for tag should be
// refused under the current rules.
func (f *Faults) Refused(tag string) bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	now := f.clock.Now()
	for _, r := range f.rules {
		if r.kind == FaultRefuse && MatchTag(r.pattern, tag) && (r.until.IsZero() || now.Before(r.until)) {
			f.injected[FaultRefuse]++
			return true
		}
	}
	return false
}

// writePlan is the outcome of consulting the rules for one Write.
type writePlan struct {
	delay  time.Duration
	buf    []byte // corrupted copy to send instead, or nil
	hangup bool   // kill the connection after a partial write
}

// planWrite rolls the dice for one write of b on a connection tagged
// tag. Corruption copies b before flipping bits.
func (f *Faults) planWrite(tag string, b []byte) writePlan {
	f.mu.Lock()
	defer f.mu.Unlock()
	var p writePlan
	now := f.clock.Now()
	for _, r := range f.rules {
		if !MatchTag(r.pattern, tag) || (!r.until.IsZero() && !now.Before(r.until)) {
			continue
		}
		switch r.kind {
		case FaultLatency:
			if r.extra > p.delay {
				p.delay = r.extra
				f.injected[FaultLatency]++
			}
		case FaultCorrupt:
			if len(b) > 0 && f.rng.Float64() < r.rate {
				if p.buf == nil {
					p.buf = append([]byte(nil), b...)
				}
				p.buf[f.rng.Intn(len(p.buf))] ^= 1 << uint(f.rng.Intn(8))
				f.injected[FaultCorrupt]++
			}
		case FaultHangup:
			if f.rng.Float64() < r.rate {
				p.hangup = true
				f.injected[FaultHangup]++
			}
		}
	}
	return p
}

// planRead rolls the dice for the rot direction: n bytes just read into
// b on a connection tagged tag; bits may be flipped in place (the
// buffer is the reader's own, freshly filled).
func (f *Faults) planRead(tag string, b []byte) {
	f.mu.Lock()
	defer f.mu.Unlock()
	now := f.clock.Now()
	for _, r := range f.rules {
		if r.kind != FaultRot || !MatchTag(r.pattern, tag) || (!r.until.IsZero() && !now.Before(r.until)) {
			continue
		}
		if len(b) > 0 && f.rng.Float64() < r.rate {
			b[f.rng.Intn(len(b))] ^= 1 << uint(f.rng.Intn(8))
			f.injected[FaultRot]++
		}
	}
}

// errInjectedHangup marks a chaos-injected connection kill.
var errInjectedHangup = fmt.Errorf("netsim: injected connection hangup")

// FaultConn wraps a net.Conn with a Path (as Conn does) plus a tagged
// fault filter: writes may be delayed, bit-flipped, or cut short with a
// connection kill; reads may be bit-flipped (rot).
type FaultConn struct {
	net.Conn
	path   *Path
	faults *Faults
	tag    string
}

// NewFaultConn wraps inner with throttling through path and fault
// injection from faults under the given tag. Either may be nil.
func NewFaultConn(inner net.Conn, path *Path, faults *Faults, tag string) *FaultConn {
	return &FaultConn{Conn: inner, path: path, faults: faults, tag: tag}
}

func (c *FaultConn) Write(b []byte) (int, error) {
	if c.path != nil {
		c.path.Transfer(len(b))
	}
	if c.faults == nil {
		return c.Conn.Write(b)
	}
	p := c.faults.planWrite(c.tag, b)
	if p.delay > 0 {
		c.faults.clock.Sleep(p.delay)
	}
	out := b
	if p.buf != nil {
		out = p.buf
	}
	if p.hangup {
		// Truncate mid-frame, then kill the socket: the peer sees a
		// garbled tail and then EOF.
		n, _ := c.Conn.Write(out[:len(out)/2])
		c.Conn.Close()
		return n, errInjectedHangup
	}
	n, err := c.Conn.Write(out)
	if n > len(b) {
		n = len(b) // report against the caller's buffer
	}
	return n, err
}

func (c *FaultConn) Read(b []byte) (int, error) {
	n, err := c.Conn.Read(b)
	if n > 0 && c.faults != nil {
		c.faults.planRead(c.tag, b[:n])
	}
	return n, err
}
