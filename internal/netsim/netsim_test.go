package netsim

import (
	"net"
	"sync"
	"testing"
	"time"

	"infinicache/internal/vclock"
)

// pumpedClock builds a hand-stepped clock plus a pumper goroutine that
// advances virtual time in small steps whenever something is blocked on
// the clock (the internal/core/backup_test.go pattern). Transfers then
// complete deterministically: delays are computed analytically from
// bucket state, and no virtual deadline depends on wall-clock speed.
func pumpedClock(t *testing.T) *vclock.Manual {
	t.Helper()
	clk := vclock.NewManual(time.Unix(0, 0))
	stop := make(chan struct{})
	var pumper sync.WaitGroup
	pumper.Add(1)
	go func() {
		defer pumper.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if clk.Waiters() > 0 {
				clk.Advance(5 * time.Millisecond) // virtual
			}
			time.Sleep(200 * time.Microsecond) // real: let woken goroutines run
		}
	}()
	t.Cleanup(func() { close(stop); pumper.Wait() })
	return clk
}

func TestBucketUnlimited(t *testing.T) {
	b := NewBucket(0)
	if d := b.Reserve(time.Now(), 1<<30); d != 0 {
		t.Fatalf("unlimited bucket delayed %v", d)
	}
}

func TestBucketRate(t *testing.T) {
	b := NewBucket(1e6) // 1 MB/s
	now := time.Now()
	d := b.Reserve(now, 500_000)
	if d != 500*time.Millisecond {
		t.Fatalf("delay = %v, want 500ms", d)
	}
	// Second reservation queues behind the first.
	d2 := b.Reserve(now, 500_000)
	if d2 != time.Second {
		t.Fatalf("queued delay = %v, want 1s", d2)
	}
}

func TestBucketIdleResetsToNow(t *testing.T) {
	b := NewBucket(1e6)
	now := time.Now()
	b.Reserve(now, 1000)
	// Much later, the link is idle again: delay is just the transfer time.
	later := now.Add(time.Hour)
	if d := b.Reserve(later, 1000); d != time.Millisecond {
		t.Fatalf("delay after idle = %v, want 1ms", d)
	}
}

func TestBucketZeroBytes(t *testing.T) {
	b := NewBucket(1)
	if d := b.Reserve(time.Now(), 0); d != 0 {
		t.Fatalf("zero-byte reserve delayed %v", d)
	}
}

func TestSetRate(t *testing.T) {
	b := NewBucket(1e6)
	b.SetRate(2e6)
	if b.Rate() != 2e6 {
		t.Fatal("SetRate did not stick")
	}
	if d := b.Reserve(time.Now(), 2_000_000); d != time.Second {
		t.Fatalf("delay = %v, want 1s", d)
	}
}

func TestPathNarrowestLinkDominates(t *testing.T) {
	clk := pumpedClock(t)
	fast := NewBucket(100e6)
	slow := NewBucket(10e6)
	p := &Path{Clock: clk, Buckets: []*Bucket{fast, slow}}
	// 10 MB: 0.1s on fast, 1s on slow — the narrow link sets the delay.
	if d := p.Transfer(10_000_000); d != time.Second {
		t.Fatalf("transfer delay = %v, want 1s (slow link)", d)
	}
}

func TestPathLatencyFloor(t *testing.T) {
	clk := pumpedClock(t)
	p := &Path{Clock: clk, Latency: 5 * time.Millisecond}
	if d := p.Transfer(1); d != 5*time.Millisecond {
		t.Fatalf("delay = %v, want latency floor 5ms", d)
	}
}

func TestConnThrottlesWrites(t *testing.T) {
	a, b := net.Pipe()
	defer a.Close()
	defer b.Close()
	clk := pumpedClock(t)
	bucket := NewBucket(1e6) // 1 MB/s virtual
	tc := NewConn(a, &Path{Clock: clk, Buckets: []*Bucket{bucket}})

	go func() {
		buf := make([]byte, 1<<16)
		for {
			if _, err := b.Read(buf); err != nil {
				return
			}
		}
	}()
	before := clk.Now()
	payload := make([]byte, 100_000) // 100ms virtual at 1 MB/s
	if _, err := tc.Write(payload); err != nil {
		t.Fatal(err)
	}
	// The write must have slept out the whole throttle delay on the
	// virtual clock and left the bucket drained (a zero-byte reserve
	// costs nothing once the backlog is paid down).
	if waited := clk.Since(before); waited < 100*time.Millisecond {
		t.Fatalf("throttled write advanced only %v of virtual time, want >= 100ms", waited)
	}
	if d := bucket.Reserve(clk.Now(), 0); d != 0 {
		t.Fatal("zero reserve after write should be 0")
	}
}

func TestBandwidthForMemory(t *testing.T) {
	cases := []struct {
		memMB int
		lo    float64
		hi    float64
	}{
		{128, 50e6, 50e6},
		{64, 50e6, 50e6},     // clamped at floor
		{1024, 160e6, 160e6}, // plateau begins
		{3008, 160e6, 160e6}, // stays at plateau
		{576, 100e6, 120e6},  // mid-range interpolation
	}
	for _, c := range cases {
		got := BandwidthForMemory(c.memMB)
		if got < c.lo || got > c.hi {
			t.Errorf("BandwidthForMemory(%d) = %.0f, want in [%.0f, %.0f]", c.memMB, got, c.lo, c.hi)
		}
	}
	// Monotone non-decreasing in memory.
	prev := 0.0
	for m := 128; m <= 3008; m += 64 {
		bw := BandwidthForMemory(m)
		if bw < prev {
			t.Fatalf("bandwidth not monotone at %d MB", m)
		}
		prev = bw
	}
}
