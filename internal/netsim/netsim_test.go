package netsim

import (
	"net"
	"testing"
	"time"

	"infinicache/internal/vclock"
)

func TestBucketUnlimited(t *testing.T) {
	b := NewBucket(0)
	if d := b.Reserve(time.Now(), 1<<30); d != 0 {
		t.Fatalf("unlimited bucket delayed %v", d)
	}
}

func TestBucketRate(t *testing.T) {
	b := NewBucket(1e6) // 1 MB/s
	now := time.Now()
	d := b.Reserve(now, 500_000)
	if d != 500*time.Millisecond {
		t.Fatalf("delay = %v, want 500ms", d)
	}
	// Second reservation queues behind the first.
	d2 := b.Reserve(now, 500_000)
	if d2 != time.Second {
		t.Fatalf("queued delay = %v, want 1s", d2)
	}
}

func TestBucketIdleResetsToNow(t *testing.T) {
	b := NewBucket(1e6)
	now := time.Now()
	b.Reserve(now, 1000)
	// Much later, the link is idle again: delay is just the transfer time.
	later := now.Add(time.Hour)
	if d := b.Reserve(later, 1000); d != time.Millisecond {
		t.Fatalf("delay after idle = %v, want 1ms", d)
	}
}

func TestBucketZeroBytes(t *testing.T) {
	b := NewBucket(1)
	if d := b.Reserve(time.Now(), 0); d != 0 {
		t.Fatalf("zero-byte reserve delayed %v", d)
	}
}

func TestSetRate(t *testing.T) {
	b := NewBucket(1e6)
	b.SetRate(2e6)
	if b.Rate() != 2e6 {
		t.Fatal("SetRate did not stick")
	}
	if d := b.Reserve(time.Now(), 2_000_000); d != time.Second {
		t.Fatalf("delay = %v, want 1s", d)
	}
}

func TestPathNarrowestLinkDominates(t *testing.T) {
	clk := vclock.NewManual(time.Unix(0, 0))
	fast := NewBucket(100e6)
	slow := NewBucket(10e6)
	p := &Path{Clock: clk, Buckets: []*Bucket{fast, slow}}
	done := make(chan time.Duration, 1)
	go func() {
		done <- p.Transfer(10_000_000) // 10 MB: 0.1s on fast, 1s on slow
	}()
	for clk.Waiters() == 0 {
		time.Sleep(time.Millisecond)
	}
	clk.Advance(time.Second)
	d := <-done
	if d != time.Second {
		t.Fatalf("transfer delay = %v, want 1s (slow link)", d)
	}
}

func TestPathLatencyFloor(t *testing.T) {
	clk := vclock.NewManual(time.Unix(0, 0))
	p := &Path{Clock: clk, Latency: 5 * time.Millisecond}
	done := make(chan time.Duration, 1)
	go func() { done <- p.Transfer(1) }()
	for clk.Waiters() == 0 {
		time.Sleep(time.Millisecond)
	}
	clk.Advance(5 * time.Millisecond)
	if d := <-done; d != 5*time.Millisecond {
		t.Fatalf("delay = %v, want latency floor 5ms", d)
	}
}

func TestConnThrottlesWrites(t *testing.T) {
	a, b := net.Pipe()
	defer a.Close()
	defer b.Close()
	clk := vclock.NewScaled(0.001) // 1000x compression
	bucket := NewBucket(1e6)       // 1 MB/s virtual
	tc := NewConn(a, &Path{Clock: clk, Buckets: []*Bucket{bucket}})

	go func() {
		buf := make([]byte, 1<<16)
		for {
			if _, err := b.Read(buf); err != nil {
				return
			}
		}
	}()
	start := time.Now()
	payload := make([]byte, 100_000) // 0.1s virtual = ~0.1ms real... plus pipe cost
	if _, err := tc.Write(payload); err != nil {
		t.Fatal(err)
	}
	// The virtual delay (100ms) compressed 1000x is ~0.1ms; just assert the
	// write completed and was throttled (bucket advanced).
	if time.Since(start) > 5*time.Second {
		t.Fatal("throttled write took too long")
	}
	if d := bucket.Reserve(clk.Now(), 0); d != 0 {
		t.Fatal("zero reserve after write should be 0")
	}
}

func TestBandwidthForMemory(t *testing.T) {
	cases := []struct {
		memMB int
		lo    float64
		hi    float64
	}{
		{128, 50e6, 50e6},
		{64, 50e6, 50e6},     // clamped at floor
		{1024, 160e6, 160e6}, // plateau begins
		{3008, 160e6, 160e6}, // stays at plateau
		{576, 100e6, 120e6},  // mid-range interpolation
	}
	for _, c := range cases {
		got := BandwidthForMemory(c.memMB)
		if got < c.lo || got > c.hi {
			t.Errorf("BandwidthForMemory(%d) = %.0f, want in [%.0f, %.0f]", c.memMB, got, c.lo, c.hi)
		}
	}
	// Monotone non-decreasing in memory.
	prev := 0.0
	for m := 128; m <= 3008; m += 64 {
		bw := BandwidthForMemory(m)
		if bw < prev {
			t.Fatalf("bandwidth not monotone at %d MB", m)
		}
		prev = bw
	}
}
