package clockcache

import (
	"fmt"
	"math/rand"
	"testing"
)

func TestAddAndSize(t *testing.T) {
	c := New()
	c.Add("a", 10)
	c.Add("b", 20)
	if c.Len() != 2 || c.Size() != 30 {
		t.Fatalf("Len=%d Size=%d, want 2, 30", c.Len(), c.Size())
	}
	c.Add("a", 15) // resize existing
	if c.Len() != 2 || c.Size() != 35 {
		t.Fatalf("after resize: Len=%d Size=%d, want 2, 35", c.Len(), c.Size())
	}
}

func TestContainsAndEntrySize(t *testing.T) {
	c := New()
	c.Add("x", 7)
	if !c.Contains("x") || c.Contains("y") {
		t.Fatal("Contains wrong")
	}
	if sz, ok := c.EntrySize("x"); !ok || sz != 7 {
		t.Fatalf("EntrySize = %d,%v", sz, ok)
	}
	if _, ok := c.EntrySize("y"); ok {
		t.Fatal("EntrySize found missing key")
	}
}

func TestRemove(t *testing.T) {
	c := New()
	c.Add("a", 5)
	c.Add("b", 6)
	sz, ok := c.Remove("a")
	if !ok || sz != 5 {
		t.Fatalf("Remove = %d,%v", sz, ok)
	}
	if c.Len() != 1 || c.Size() != 6 {
		t.Fatalf("after remove: Len=%d Size=%d", c.Len(), c.Size())
	}
	if _, ok := c.Remove("a"); ok {
		t.Fatal("second Remove succeeded")
	}
}

func TestEvictEmptyCache(t *testing.T) {
	c := New()
	if v := c.Evict(); v != nil {
		t.Fatalf("Evict on empty cache = %v", v)
	}
}

func TestEvictSecondChance(t *testing.T) {
	c := New()
	c.Add("a", 1)
	c.Add("b", 1)
	c.Add("c", 1)
	// All bits are set on insert; first Evict sweep clears them and must
	// eventually evict someone.
	v := c.Evict()
	if v == nil {
		t.Fatal("Evict returned nil on non-empty cache")
	}
	// Touch survivor keys: they should outlive an untouched one.
	c.Add("d", 1)
	remaining := c.Keys()
	for _, k := range remaining {
		if k != "d" {
			c.Touch(k)
		}
	}
	// The hand clears bits as it sweeps; "d" was just added (bit set), so
	// eviction order depends on hand position, but an entry is evicted.
	if v2 := c.Evict(); v2 == nil {
		t.Fatal("second Evict returned nil")
	}
	if c.Len() != 2 {
		t.Fatalf("Len = %d, want 2", c.Len())
	}
}

func TestTouchProtectsEntry(t *testing.T) {
	c := New()
	c.Add("a", 1)
	c.Add("b", 1)
	c.Add("c", 1)
	// First Evict sweeps (clearing every bit) and evicts one entry.
	first := c.Evict()
	if first == nil {
		t.Fatal("first Evict returned nil")
	}
	// Pick a survivor to protect; keep touching it between evictions.
	protect := c.Keys()[0]
	for c.Len() > 1 {
		c.Touch(protect)
		if c.Evict() == nil {
			t.Fatal("Evict returned nil while entries remain")
		}
	}
	if !c.Contains(protect) {
		t.Fatalf("touched entry %q was evicted; survivors: %v", protect, c.Keys())
	}
}

func TestEvictUntil(t *testing.T) {
	c := New()
	for i := 0; i < 10; i++ {
		c.Add(fmt.Sprintf("k%d", i), 10)
	}
	victims := c.EvictUntil(45)
	if c.Size() > 45 {
		t.Fatalf("Size=%d after EvictUntil(45)", c.Size())
	}
	if len(victims) != 6 {
		t.Fatalf("evicted %d entries, want 6", len(victims))
	}
	if c.Len() != 4 {
		t.Fatalf("Len=%d, want 4", c.Len())
	}
}

func TestRemoveHandEntry(t *testing.T) {
	c := New()
	c.Add("a", 1)
	c.Add("b", 1)
	c.Evict() // positions the hand
	// Remove whatever the hand points at; internal state must stay sane.
	for _, k := range c.Keys() {
		c.Remove(k)
	}
	if c.Len() != 0 || c.Size() != 0 {
		t.Fatalf("Len=%d Size=%d after removing all", c.Len(), c.Size())
	}
	c.Add("x", 1)
	if v := c.Evict(); v == nil || v.Key != "x" {
		t.Fatalf("Evict after refill = %v", v)
	}
}

func TestKeysByPriority(t *testing.T) {
	c := New()
	c.Add("a", 1)
	c.Add("b", 1)
	c.Add("c", 1)
	c.Touch("a") // most recently used
	keys := c.KeysByPriority()
	if len(keys) != 3 {
		t.Fatalf("KeysByPriority len = %d, want 3", len(keys))
	}
	if keys[0] != "a" || keys[1] != "c" || keys[2] != "b" {
		t.Fatalf("MRU-first order wrong: %v", keys)
	}
}

func TestApproximatesLRUUnderSkew(t *testing.T) {
	// Under a skewed access pattern, CLOCK should keep hot keys resident
	// far more often than cold ones.
	c := New()
	const capacity = 64
	rng := rand.New(rand.NewSource(42))
	hotHits, hotRefs, coldHits, coldRefs := 0, 0, 0, 0
	for i := 0; i < 20000; i++ {
		var key string
		hot := rng.Float64() < 0.8
		if hot {
			key = fmt.Sprintf("hot-%d", rng.Intn(16))
			hotRefs++
		} else {
			key = fmt.Sprintf("cold-%d", rng.Intn(4096))
			coldRefs++
		}
		if c.Contains(key) {
			c.Touch(key)
			if hot {
				hotHits++
			} else {
				coldHits++
			}
		} else {
			c.Add(key, 1)
			c.EvictUntil(capacity)
		}
	}
	hotRate := float64(hotHits) / float64(hotRefs)
	coldRate := float64(coldHits) / float64(coldRefs)
	if hotRate < 0.9 {
		t.Errorf("hot hit rate %.2f, want > 0.9", hotRate)
	}
	if coldRate > 0.2 {
		t.Errorf("cold hit rate %.2f, want < 0.2", coldRate)
	}
}

func TestSizeAccountingInvariant(t *testing.T) {
	// Property: Size() always equals the sum of entry sizes no matter the
	// operation sequence.
	c := New()
	rng := rand.New(rand.NewSource(7))
	shadow := map[string]int64{}
	for op := 0; op < 5000; op++ {
		k := fmt.Sprintf("k%d", rng.Intn(50))
		switch rng.Intn(4) {
		case 0:
			sz := int64(rng.Intn(100) + 1)
			c.Add(k, sz)
			shadow[k] = sz
		case 1:
			c.Remove(k)
			delete(shadow, k)
		case 2:
			c.Touch(k)
		case 3:
			if v := c.Evict(); v != nil {
				delete(shadow, v.Key)
			}
		}
		var want int64
		for _, sz := range shadow {
			want += sz
		}
		if c.Size() != want {
			t.Fatalf("op %d: Size=%d, want %d", op, c.Size(), want)
		}
		if c.Len() != len(shadow) {
			t.Fatalf("op %d: Len=%d, want %d", op, c.Len(), len(shadow))
		}
	}
}
