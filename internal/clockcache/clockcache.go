// Package clockcache implements the CLOCK (second-chance) replacement
// policy from Corbató's Multics paging experiment, the algorithm
// InfiniCache uses in four places:
//
//   - per proxy, at object granularity, to pick eviction victims when a
//     Lambda pool runs out of memory (§3.2);
//   - per Lambda node, to keep cached chunks in approximate MRU→LRU order
//     for the delta-sync backup protocol (§3.3, §4.2);
//   - inside the proxy-resident hot-object tier, both for the resident
//     set (eviction under the byte cap) and as the payload-less "ghost"
//     admission filter that frequency-gates what may enter the tier.
//
// CLOCK approximates LRU with O(1) access cost: entries sit on a circular
// list with a reference bit; the eviction hand sweeps the circle, clearing
// bits and evicting the first entry whose bit is already clear.
//
// # Contract
//
// A Cache tracks keys and accounting sizes only — values live with the
// caller (the proxy's mapping table, the node's chunk store, the hot
// tier's entry map), which is also responsible for locking: no method
// here is safe for concurrent use. Add/Touch set the reference bit;
// Evict/EvictUntil run the hand; KeysByPriority orders MRU-first by
// touch generation for the §4.2 backup metadata. A set where every
// entry has size 1 doubles as a bounded key filter (Size() == Len()),
// which is how the hot tier's ghost filter uses it.
package clockcache

import (
	"container/list"
	"sort"
)

// Entry is a cached item with its accounting size.
type Entry struct {
	Key  string
	Size int64
	// referenced is the CLOCK bit, set on access and cleared by the hand.
	referenced bool
	// touchGen orders entries by recency for KeysByPriority (the
	// "CLOCK-based priority queue" the Lambda runtime keeps for backup
	// ordering, §3.3); it does not affect eviction.
	touchGen uint64
}

// Cache is a CLOCK cache tracking keys and sizes; values live elsewhere
// (the proxy's mapping table or the node's chunk store). Not safe for
// concurrent use; callers hold their own locks.
type Cache struct {
	ring  *list.List               // of *Entry
	index map[string]*list.Element // key -> element
	hand  *list.Element
	size  int64
	gen   uint64
}

// New returns an empty cache.
func New() *Cache {
	return &Cache{
		ring:  list.New(),
		index: make(map[string]*list.Element),
	}
}

// Len returns the number of entries.
func (c *Cache) Len() int { return c.ring.Len() }

// Size returns the sum of entry sizes.
func (c *Cache) Size() int64 { return c.size }

// Contains reports whether key is present, without touching its CLOCK bit.
func (c *Cache) Contains(key string) bool {
	_, ok := c.index[key]
	return ok
}

// EntrySize returns the recorded size of key and whether it is present.
func (c *Cache) EntrySize(key string) (int64, bool) {
	el, ok := c.index[key]
	if !ok {
		return 0, false
	}
	return el.Value.(*Entry).Size, true
}

// Add inserts key with the given size, or updates the size of an existing
// key. Either way the entry's reference bit is set.
func (c *Cache) Add(key string, size int64) {
	c.gen++
	if el, ok := c.index[key]; ok {
		e := el.Value.(*Entry)
		c.size += size - e.Size
		e.Size = size
		e.referenced = true
		e.touchGen = c.gen
		return
	}
	e := &Entry{Key: key, Size: size, referenced: true, touchGen: c.gen}
	var el *list.Element
	if c.hand != nil {
		// Insert just behind the hand so the new entry is the last the
		// hand reaches, matching the classic CLOCK insertion point.
		el = c.ring.InsertBefore(e, c.hand)
	} else {
		el = c.ring.PushBack(e)
	}
	c.index[key] = el
	c.size += size
}

// Touch sets the reference bit of key, granting it a second chance.
// It reports whether the key was present.
func (c *Cache) Touch(key string) bool {
	el, ok := c.index[key]
	if !ok {
		return false
	}
	c.gen++
	e := el.Value.(*Entry)
	e.referenced = true
	e.touchGen = c.gen
	return true
}

// Remove deletes key, returning its size and whether it was present.
func (c *Cache) Remove(key string) (int64, bool) {
	el, ok := c.index[key]
	if !ok {
		return 0, false
	}
	e := el.Value.(*Entry)
	if c.hand == el {
		c.hand = c.next(el)
		if c.hand == el {
			c.hand = nil
		}
	}
	c.ring.Remove(el)
	delete(c.index, key)
	c.size -= e.Size
	return e.Size, true
}

func (c *Cache) next(el *list.Element) *list.Element {
	n := el.Next()
	if n == nil {
		n = c.ring.Front()
	}
	return n
}

// Evict runs the CLOCK hand and removes the first entry found with a clear
// reference bit, returning it. Entries with set bits are given their second
// chance (bit cleared, hand moves on). Returns nil if the cache is empty.
func (c *Cache) Evict() *Entry {
	if c.ring.Len() == 0 {
		return nil
	}
	if c.hand == nil {
		c.hand = c.ring.Front()
	}
	// At most two sweeps: the first clears all bits in the worst case and
	// the second must find a victim.
	for i := 0; i < 2*c.ring.Len(); i++ {
		e := c.hand.Value.(*Entry)
		if e.referenced {
			e.referenced = false
			c.hand = c.next(c.hand)
			continue
		}
		victim := c.hand
		c.hand = c.next(victim)
		if c.hand == victim {
			c.hand = nil
		}
		c.ring.Remove(victim)
		delete(c.index, e.Key)
		c.size -= e.Size
		return e
	}
	return nil // unreachable with Len() > 0
}

// EvictUntil evicts entries until Size() <= limit, returning the victims in
// eviction order.
func (c *Cache) EvictUntil(limit int64) []*Entry {
	var out []*Entry
	for c.size > limit && c.ring.Len() > 0 {
		if v := c.Evict(); v != nil {
			out = append(out, v)
		}
	}
	return out
}

// Keys returns all keys in ring order starting from the front.
func (c *Cache) Keys() []string {
	out := make([]string, 0, c.ring.Len())
	for el := c.ring.Front(); el != nil; el = el.Next() {
		out = append(out, el.Value.(*Entry).Key)
	}
	return out
}

// KeysByPriority returns keys ordered MRU-first by touch generation.
// The Lambda runtime sends backup metadata in this order so the most
// valuable chunks migrate first (§4.2: "in an order from MRU to LRU").
func (c *Cache) KeysByPriority() []string {
	entries := make([]*Entry, 0, c.ring.Len())
	for el := c.ring.Front(); el != nil; el = el.Next() {
		entries = append(entries, el.Value.(*Entry))
	}
	sort.Slice(entries, func(i, j int) bool {
		return entries[i].touchGen > entries[j].touchGen
	})
	out := make([]string, len(entries))
	for i, e := range entries {
		out[i] = e.Key
	}
	return out
}
