module infinicache

go 1.24
