package infinicache_test

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"

	infinicache "infinicache"
)

func newTestCache(t *testing.T) *infinicache.Cache {
	t.Helper()
	c, err := infinicache.New(infinicache.Config{
		NodesPerProxy: 8,
		NodeMemoryMB:  256,
		DataShards:    4,
		ParityShards:  2,
		TimeScale:     0.02,
		Seed:          1,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	return c
}

func TestPublicAPIQuickstart(t *testing.T) {
	cache := newTestCache(t)
	cl, err := cache.NewClient()
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	obj := make([]byte, 1<<20)
	rand.New(rand.NewSource(1)).Read(obj)
	if err := cl.Put("hello", obj); err != nil {
		t.Fatal(err)
	}
	got, err := cl.Get("hello")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, obj) {
		t.Fatal("round trip corrupted the object")
	}
	if _, err := cl.Get("missing"); !errors.Is(err, infinicache.ErrMiss) {
		t.Fatalf("expected ErrMiss, got %v", err)
	}
}

func TestPublicAPIGetOrLoad(t *testing.T) {
	cache := newTestCache(t)
	cl, err := cache.NewClient()
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	loads := 0
	obj := []byte("backing store payload")
	loader := func() ([]byte, error) { loads++; return obj, nil }
	for i := 0; i < 3; i++ {
		got, err := cl.GetOrLoad("lazy", loader)
		if err != nil || !bytes.Equal(got, obj) {
			t.Fatalf("GetOrLoad #%d: %v", i, err)
		}
	}
	if loads != 1 {
		t.Fatalf("loader ran %d times, want 1", loads)
	}
	if cl.Stats().Hits.Load() != 2 {
		t.Fatalf("hits = %d, want 2", cl.Stats().Hits.Load())
	}
}

func TestPublicAPIFaultInjection(t *testing.T) {
	cache := newTestCache(t)
	cl, err := cache.NewClient()
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	obj := make([]byte, 256<<10)
	rand.New(rand.NewSource(2)).Read(obj)
	if err := cl.Put("resilient", obj); err != nil {
		t.Fatal(err)
	}
	// Kill up to p nodes through the exposed deployment.
	d := cache.Deployment()
	d.Platform.ForceReclaim("p0-node0")
	d.Platform.ForceReclaim("p0-node1")
	got, err := cl.Get("resilient")
	if err != nil || !bytes.Equal(got, obj) {
		t.Fatalf("get after reclaim: %v", err)
	}
}
