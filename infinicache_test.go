package infinicache_test

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"testing"

	infinicache "infinicache"
)

func newTestCache(t *testing.T) *infinicache.Cache {
	t.Helper()
	c, err := infinicache.New(
		infinicache.WithNodesPerProxy(8),
		infinicache.WithNodeMemoryMB(256),
		infinicache.WithShards(4, 2),
		infinicache.WithTimeScale(0.02),
		infinicache.WithSeed(1),
	)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	return c
}

func TestPublicAPIQuickstart(t *testing.T) {
	cache := newTestCache(t)
	cl, err := cache.NewClient()
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	ctx := context.Background()

	obj := make([]byte, 1<<20)
	rand.New(rand.NewSource(1)).Read(obj)
	if err := cl.PutCtx(ctx, "hello", obj); err != nil {
		t.Fatal(err)
	}
	got, err := cl.GetCtx(ctx, "hello")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, obj) {
		t.Fatal("round trip corrupted the object")
	}
	if _, err := cl.GetCtx(ctx, "missing"); !errors.Is(err, infinicache.ErrMiss) {
		t.Fatalf("expected ErrMiss, got %v", err)
	}

	// The deprecated context-free wrappers keep working.
	if err := cl.Put("compat", obj[:1024]); err != nil {
		t.Fatal(err)
	}
	got, err = cl.Get("compat")
	if err != nil || !bytes.Equal(got, obj[:1024]) {
		t.Fatalf("deprecated Get/Put round trip: %v", err)
	}
	if err := cl.Del("compat"); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Get("compat"); !errors.Is(err, infinicache.ErrMiss) {
		t.Fatalf("expected ErrMiss after Del, got %v", err)
	}
}

// TestPublicAPIHotTier drives the WithHotTier option through the full
// deployment: a re-read small object becomes tier-resident at its
// owning proxy, the proxy's hot counters move, and overwrites stay
// immediately visible (the tier invalidates synchronously).
func TestPublicAPIHotTier(t *testing.T) {
	cache, err := infinicache.New(
		infinicache.WithNodesPerProxy(8),
		infinicache.WithNodeMemoryMB(256),
		infinicache.WithShards(4, 2),
		infinicache.WithSeed(1),
		infinicache.WithHotTier(32<<20),
	)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cache.Close)
	cl, err := cache.NewClient()
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	ctx := context.Background()

	obj := make([]byte, 64<<10)
	rand.New(rand.NewSource(7)).Read(obj)
	if err := cl.PutCtx(ctx, "hot", obj); err != nil {
		t.Fatal(err)
	}
	// First GET read-admits (the PUT left the key ghost-warm); the
	// second must be a tier hit.
	for i := 0; i < 2; i++ {
		got, err := cl.GetCtx(ctx, "hot")
		if err != nil || !bytes.Equal(got, obj) {
			t.Fatalf("GET %d: %v", i, err)
		}
	}
	st := cache.Deployment().Proxies[0].Stats()
	if st.HotHits.Load() == 0 {
		t.Fatal("no hot-tier hits through the public API")
	}
	if st.HotBytes.Load() <= 0 {
		t.Fatal("HotBytes gauge not populated")
	}

	// Overwrite: the very next read must see the new bytes.
	obj2 := make([]byte, 64<<10)
	rand.New(rand.NewSource(8)).Read(obj2)
	if err := cl.PutCtx(ctx, "hot", obj2); err != nil {
		t.Fatal(err)
	}
	got, err := cl.GetCtx(ctx, "hot")
	if err != nil || !bytes.Equal(got, obj2) {
		t.Fatalf("GET after overwrite served stale/err: %v", err)
	}
}

func TestPublicAPIZeroCopyObject(t *testing.T) {
	cache := newTestCache(t)
	cl, err := cache.NewClient()
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	ctx := context.Background()

	obj := make([]byte, 777<<10) // odd size exercises the tail segment
	rand.New(rand.NewSource(3)).Read(obj)
	if err := cl.PutCtx(ctx, "zc", obj); err != nil {
		t.Fatal(err)
	}

	handle, err := cl.GetObject(ctx, "zc")
	if err != nil {
		t.Fatal(err)
	}
	if handle.Size() != len(obj) {
		t.Fatalf("Size = %d, want %d", handle.Size(), len(obj))
	}
	if got := handle.Bytes(); !bytes.Equal(got, obj) {
		t.Fatal("Bytes mismatch")
	}
	var sink bytes.Buffer
	n, err := handle.WriteTo(&sink)
	if err != nil || n != int64(len(obj)) || !bytes.Equal(sink.Bytes(), obj) {
		t.Fatalf("WriteTo: n=%d err=%v", n, err)
	}
	viaRead, err := io.ReadAll(handle)
	if err != nil || !bytes.Equal(viaRead, obj) {
		t.Fatalf("Read: %v", err)
	}
	handle.Release()
	handle.Release() // double Release is a no-op
	if _, err := handle.WriteTo(io.Discard); !errors.Is(err, infinicache.ErrReleased) {
		t.Fatalf("WriteTo after Release = %v, want ErrReleased", err)
	}
}

func TestPublicAPIBatch(t *testing.T) {
	cache := newTestCache(t)
	cl, err := cache.NewClient()
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	ctx := context.Background()

	const n = 8
	rng := rand.New(rand.NewSource(5))
	pairs := make([]infinicache.KV, n)
	keys := make([]string, n)
	want := make(map[string][]byte, n)
	for i := range pairs {
		blob := make([]byte, 64<<10)
		rng.Read(blob)
		keys[i] = fmt.Sprintf("batch/%d", i)
		pairs[i] = infinicache.KV{Key: keys[i], Value: blob}
		want[keys[i]] = blob
	}
	for _, r := range cl.MPut(ctx, pairs...) {
		if r.Err != nil {
			t.Fatalf("MPut %s: %v", r.Key, r.Err)
		}
	}
	res := cl.MGet(ctx, append(keys, "batch/nope")...)
	if len(res) != n+1 {
		t.Fatalf("MGet returned %d results, want %d", len(res), n+1)
	}
	for i := 0; i < n; i++ {
		if res[i].Err != nil {
			t.Fatalf("MGet %s: %v", res[i].Key, res[i].Err)
		}
		if got := res[i].Object.Bytes(); !bytes.Equal(got, want[res[i].Key]) {
			t.Fatalf("MGet %s corrupted", res[i].Key)
		}
		res[i].Object.Release()
	}
	if !errors.Is(res[n].Err, infinicache.ErrMiss) {
		t.Fatalf("missing key err = %v, want ErrMiss", res[n].Err)
	}
}

func TestPublicAPIGetOrLoad(t *testing.T) {
	cache := newTestCache(t)
	cl, err := cache.NewClient()
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	ctx := context.Background()

	loads := 0
	obj := []byte("backing store payload")
	loader := func(context.Context) ([]byte, error) { loads++; return obj, nil }
	for i := 0; i < 3; i++ {
		got, err := cl.GetOrLoadCtx(ctx, "lazy", loader)
		if err != nil || !bytes.Equal(got, obj) {
			t.Fatalf("GetOrLoadCtx #%d: %v", i, err)
		}
	}
	if loads != 1 {
		t.Fatalf("loader ran %d times, want 1", loads)
	}
	if cl.Stats().Hits.Load() != 2 {
		t.Fatalf("hits = %d, want 2", cl.Stats().Hits.Load())
	}
}

func TestPublicAPIFaultInjection(t *testing.T) {
	cache := newTestCache(t)
	cl, err := cache.NewClient()
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	ctx := context.Background()
	obj := make([]byte, 256<<10)
	rand.New(rand.NewSource(2)).Read(obj)
	if err := cl.PutCtx(ctx, "resilient", obj); err != nil {
		t.Fatal(err)
	}
	// Kill up to p nodes through the exposed deployment.
	d := cache.Deployment()
	d.Platform.ForceReclaim("p0-node0")
	d.Platform.ForceReclaim("p0-node1")
	got, err := cl.GetCtx(ctx, "resilient")
	if err != nil || !bytes.Equal(got, obj) {
		t.Fatalf("get after reclaim: %v", err)
	}
}
