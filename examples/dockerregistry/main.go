// Docker-registry scenario: the workload that motivates the paper. A
// registry serves large image layers out of an S3-like backing store;
// InfiniCache sits in front as a look-aside cache (GetOrLoadCtx). The
// example replays a short synthetic IBM-trace-style workload and
// reports hit ratio, latency by object size, and the Lambda bill.
//
// Run with: go run ./examples/dockerregistry
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"
	"time"

	infinicache "infinicache"
	"infinicache/internal/backing"
	"infinicache/internal/costmodel"
	"infinicache/internal/stats"
	"infinicache/internal/workload"
)

func main() {
	cache, err := infinicache.New(
		infinicache.WithNodesPerProxy(16),
		infinicache.WithNodeMemoryMB(512),
		infinicache.WithShards(10, 2),
		infinicache.WithTimeScale(0.01), // 100x compression
		infinicache.WithSeed(7),
	)
	if err != nil {
		log.Fatal(err)
	}
	defer cache.Close()

	client, err := cache.NewClient()
	if err != nil {
		log.Fatal(err)
	}
	defer client.Close()
	ctx := context.Background()

	store := backing.New(cache.Clock(), 7)

	// A small registry-like trace: a few dozen layers, heavy reuse.
	trace := workload.Generate(workload.Config{
		Objects:         60,
		Duration:        30 * time.Minute,
		MeanGetsPerHour: 600,
		MaxObjectBytes:  24 << 20, // keep the demo quick
		Seed:            7,
	})
	fmt.Printf("replaying %d registry GETs over %d layers...\n",
		len(trace.Records), len(trace.Objects))

	rng := rand.New(rand.NewSource(7))
	var latencies []float64
	for _, rec := range trace.Records {
		// Pre-populate the backing store lazily, as a registry would.
		key := rec.Key
		if !store.Has(key) {
			blob := make([]byte, rec.Size)
			rng.Read(blob)
			store.Put(key, blob)
		}
		start := time.Now()
		if _, err := client.GetOrLoadCtx(ctx, key, func(context.Context) ([]byte, error) {
			return store.Get(key)
		}); err != nil {
			log.Fatalf("GET %s: %v", key, err)
		}
		latencies = append(latencies, time.Since(start).Seconds())
	}

	st := client.Stats()
	hitRatio := float64(st.Hits.Load()) / float64(st.Gets.Load())
	fmt.Printf("\nhit ratio: %.1f%% (%d hits / %d gets, %d cold misses)\n",
		hitRatio*100, st.Hits.Load(), st.Gets.Load(), st.ColdMisses.Load())
	fmt.Printf("latency (wall seconds): %s\n", stats.Summarize(latencies))

	s3Gets, _ := store.Counters()
	fmt.Printf("backing-store GETs avoided: %d of %d (%.1f%%)\n",
		st.Gets.Load()-s3Gets, st.Gets.Load(),
		100*float64(st.Gets.Load()-s3Gets)/float64(st.Gets.Load()))

	usage := cache.Deployment().Platform.Ledger().Total()
	fmt.Printf("lambda bill: %d invocations, %.1f GB-s => $%.6f\n",
		usage.Invocations, usage.GBSeconds, costmodel.LambdaCost(usage))
}
