// Multi-proxy scalability probe (the Figure 2/12 scenario): several
// proxies each manage their own Lambda pool; multiple concurrent
// clients share all pools through consistent hashing. Throughput should
// scale near-linearly with the client count. The batch read path (MGet)
// is exercised too: one call fans a key set out across all three
// proxies as one pipelined burst each.
//
// Run with: go run ./examples/multiproxy
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	infinicache "infinicache"
)

func main() {
	cache, err := infinicache.New(
		infinicache.WithProxies(3),
		infinicache.WithNodesPerProxy(12),
		infinicache.WithNodeMemoryMB(1024),
		infinicache.WithShards(4, 2),
		infinicache.WithTimeScale(0.02),
		infinicache.WithSeed(11),
	)
	if err != nil {
		log.Fatal(err)
	}
	defer cache.Close()
	ctx := context.Background()

	// Seed the cluster with shared objects through one batched MPut:
	// pairs are grouped by owning proxy and each group's chunk SETs ride
	// that proxy connection as a single windowed burst.
	seedClient, err := cache.NewClient()
	if err != nil {
		log.Fatal(err)
	}
	const objects = 24
	const objSize = 2 << 20
	rng := rand.New(rand.NewSource(11))
	keys := make([]string, objects)
	pairs := make([]infinicache.KV, objects)
	for i := 0; i < objects; i++ {
		obj := make([]byte, objSize)
		rng.Read(obj)
		keys[i] = fmt.Sprintf("shared/%d", i)
		pairs[i] = infinicache.KV{Key: keys[i], Value: obj}
	}
	start := time.Now()
	for _, r := range seedClient.MPut(ctx, pairs...) {
		if r.Err != nil {
			log.Fatalf("MPut %s: %v", r.Key, r.Err)
		}
	}
	fmt.Printf("MPut of %d x 2 MB objects (one burst per proxy) in %v\n",
		objects, time.Since(start).Round(time.Millisecond))

	// One batched MGet reads everything back.
	start = time.Now()
	var batchBytes int64
	for _, r := range seedClient.MGet(ctx, keys...) {
		if r.Err != nil {
			log.Fatalf("MGet %s: %v", r.Key, r.Err)
		}
		batchBytes += int64(r.Object.Size())
		r.Object.Release()
	}
	fmt.Printf("MGet of %d keys (%d MB) across 3 proxies       in %v\n\n",
		objects, batchBytes>>20, time.Since(start).Round(time.Millisecond))
	seedClient.Close()

	for _, clients := range []int{1, 2, 4, 8} {
		var bytesMoved atomic.Int64
		var wg sync.WaitGroup
		start := time.Now()
		deadline := start.Add(3 * time.Second)
		for c := 0; c < clients; c++ {
			wg.Add(1)
			go func(c int) {
				defer wg.Done()
				cl, err := cache.NewClient()
				if err != nil {
					log.Print(err)
					return
				}
				defer cl.Close()
				r := rand.New(rand.NewSource(int64(c)))
				for time.Now().Before(deadline) {
					key := fmt.Sprintf("shared/%d", r.Intn(objects))
					obj, err := cl.GetObject(ctx, key)
					if err != nil {
						log.Printf("get %s: %v", key, err)
						return
					}
					bytesMoved.Add(int64(obj.Size()))
					obj.Release()
				}
			}(c)
		}
		wg.Wait()
		elapsed := time.Since(start).Seconds()
		gbps := float64(bytesMoved.Load()) / elapsed / 1e9
		fmt.Printf("%d client(s): %6.2f GB/s aggregate (wall time)\n", clients, gbps)
	}
	fmt.Println("\nthroughput scales with clients while Lambda pools have headroom (Figure 12)")
}
