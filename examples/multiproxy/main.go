// Multi-proxy scalability probe (the Figure 2/12 scenario): several
// proxies each manage their own Lambda pool; multiple concurrent
// clients share all pools through consistent hashing. Throughput should
// scale near-linearly with the client count.
//
// Run with: go run ./examples/multiproxy
package main

import (
	"fmt"
	"log"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	infinicache "infinicache"
)

func main() {
	cache, err := infinicache.New(infinicache.Config{
		Proxies:       3,
		NodesPerProxy: 12,
		NodeMemoryMB:  1024,
		DataShards:    4,
		ParityShards:  2,
		TimeScale:     0.02,
		Seed:          11,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer cache.Close()

	// Seed the cluster with shared objects.
	seedClient, err := cache.NewClient()
	if err != nil {
		log.Fatal(err)
	}
	const objects = 24
	const objSize = 2 << 20
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < objects; i++ {
		obj := make([]byte, objSize)
		rng.Read(obj)
		if err := seedClient.Put(fmt.Sprintf("shared/%d", i), obj); err != nil {
			log.Fatal(err)
		}
	}
	seedClient.Close()

	for _, clients := range []int{1, 2, 4, 8} {
		var bytesMoved atomic.Int64
		var wg sync.WaitGroup
		start := time.Now()
		deadline := start.Add(3 * time.Second)
		for c := 0; c < clients; c++ {
			wg.Add(1)
			go func(c int) {
				defer wg.Done()
				cl, err := cache.NewClient()
				if err != nil {
					log.Print(err)
					return
				}
				defer cl.Close()
				r := rand.New(rand.NewSource(int64(c)))
				for time.Now().Before(deadline) {
					key := fmt.Sprintf("shared/%d", r.Intn(objects))
					obj, err := cl.Get(key)
					if err != nil {
						log.Printf("get %s: %v", key, err)
						return
					}
					bytesMoved.Add(int64(len(obj)))
				}
			}(c)
		}
		wg.Wait()
		elapsed := time.Since(start).Seconds()
		gbps := float64(bytesMoved.Load()) / elapsed / 1e9
		fmt.Printf("%d client(s): %6.2f GB/s aggregate (wall time)\n", clients, gbps)
	}
	fmt.Println("\nthroughput scales with clients while Lambda pools have headroom (Figure 12)")
}
