// Fault injection: exercise the availability machinery of §4. The
// example stores objects, lets the delta-sync backup replicate every
// node, then reclaims instances in escalating waves and shows how the
// cache responds: EC reconstruction for <= p lost chunks, failover to
// peer replicas after backups, and RESET from the backing store when
// everything is gone.
//
// Run with: go run ./examples/faultinjection
package main

import (
	"context"
	"errors"
	"fmt"
	"log"
	"math/rand"
	"time"

	infinicache "infinicache"
	"infinicache/internal/core"
)

func main() {
	cache, err := infinicache.New(
		infinicache.WithNodesPerProxy(8),
		infinicache.WithNodeMemoryMB(256),
		infinicache.WithShards(4, 2),
		infinicache.WithWarmupInterval(2*time.Second), // virtual
		infinicache.WithBackupInterval(4*time.Second), // virtual
		infinicache.WithTimeScale(0.01),               // 100x compression
		infinicache.WithRecovery(true),
		infinicache.WithSeed(13),
	)
	if err != nil {
		log.Fatal(err)
	}
	defer cache.Close()

	client, err := cache.NewClient()
	if err != nil {
		log.Fatal(err)
	}
	defer client.Close()
	ctx := context.Background()

	obj := make([]byte, 512<<10)
	rand.New(rand.NewSource(13)).Read(obj)
	if err := client.PutCtx(ctx, "precious", obj); err != nil {
		log.Fatal(err)
	}
	fmt.Println("stored 512 KB object as RS(4+2) chunks on 8 Lambda nodes")

	d := cache.Deployment()
	proxy := d.Proxies[0]

	// Wave 1: lose p = 2 nodes; erasure coding absorbs it.
	d.Platform.ForceReclaim(core.NodeName(0, 0))
	d.Platform.ForceReclaim(core.NodeName(0, 1))
	if _, err := client.GetCtx(ctx, "precious"); err != nil {
		log.Fatalf("wave 1: %v", err)
	}
	fmt.Printf("wave 1: reclaimed 2 nodes -> EC decode served the object (decodes=%d, recovered chunks=%d)\n",
		client.Stats().Decodes.Load(), client.Stats().Recoveries.Load())

	// Wait for backups so every node has a synced peer replica.
	fmt.Println("waiting for delta-sync backups to replicate every node...")
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) && proxy.Stats().BackupsDone.Load() < 8 {
		time.Sleep(20 * time.Millisecond)
	}
	fmt.Printf("backup rounds completed: %d\n", proxy.Stats().BackupsDone.Load())

	// Wave 2: reclaim ONE replica of every node; peers take over.
	for i := 0; i < 8; i++ {
		d.Platform.ForceReclaimN(core.NodeName(0, i), 1)
	}
	if _, err := client.GetCtx(ctx, "precious"); err != nil {
		log.Fatalf("wave 2: %v", err)
	}
	fmt.Println("wave 2: reclaimed one replica of EVERY node -> peer replicas served the object")

	// Wave 3: scorched earth; only the backing store can help now.
	for i := 0; i < 8; i++ {
		d.Platform.ForceReclaim(core.NodeName(0, i))
	}
	_, err = client.GetCtx(ctx, "precious")
	fmt.Printf("wave 3: reclaimed everything -> Get says: %v\n", err)
	if !errors.Is(err, infinicache.ErrLost) && !errors.Is(err, infinicache.ErrMiss) {
		log.Fatal("expected a loss after total reclamation")
	}
	got, err := client.GetOrLoadCtx(ctx, "precious", func(context.Context) ([]byte, error) {
		fmt.Println("        RESET: reloading from the backing store and re-inserting")
		return obj, nil
	})
	if err != nil || len(got) != len(obj) {
		log.Fatalf("reset failed: %v", err)
	}
	if _, err := client.GetCtx(ctx, "precious"); err != nil {
		log.Fatalf("after reset: %v", err)
	}
	fmt.Printf("object cached again; losses observed=%d\n\n", client.Stats().Losses.Load())

	s := proxy.Stats()
	fmt.Printf("proxy stats: invokes=%d reinvokes=%d backups=%d done=%d swaps=%d chunkMisses=%d losses=%d\n",
		s.Invokes.Load(), s.Reinvokes.Load(), s.Backups.Load(), s.BackupsDone.Load(),
		s.BackupSwaps.Load(), s.ChunkMisses.Load(), s.ObjectLosses.Load())
}
