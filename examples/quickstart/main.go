// Quickstart: start a local InfiniCache deployment, store a 10 MB
// object, read it back, and print the client and billing statistics.
//
// Run with: go run ./examples/quickstart
package main

import (
	"bytes"
	"fmt"
	"log"
	"math/rand"
	"time"

	infinicache "infinicache"
	"infinicache/internal/costmodel"
)

func main() {
	cache, err := infinicache.New(infinicache.Config{
		NodesPerProxy: 14,
		NodeMemoryMB:  512,
		DataShards:    10,
		ParityShards:  2,
		TimeScale:     0.05, // 20x faster than wall clock
		Seed:          42,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer cache.Close()

	client, err := cache.NewClient()
	if err != nil {
		log.Fatal(err)
	}
	defer client.Close()

	obj := make([]byte, 10<<20)
	rand.New(rand.NewSource(1)).Read(obj)

	start := time.Now()
	if err := client.Put("quickstart/object", obj); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("PUT 10 MB as RS(10+2) chunks across 14 Lambda nodes in %v\n", time.Since(start).Round(time.Millisecond))

	start = time.Now()
	got, err := client.Get("quickstart/object")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("GET 10 MB (first-d parallel chunk fetch)        in %v\n", time.Since(start).Round(time.Millisecond))

	if !bytes.Equal(got, obj) {
		log.Fatal("object corrupted!")
	}
	fmt.Println("object verified byte-for-byte")

	st := client.Stats()
	fmt.Printf("\nclient stats: gets=%d hits=%d puts=%d decodes=%d\n",
		st.Gets.Load(), st.Hits.Load(), st.Puts.Load(), st.Decodes.Load())

	usage := cache.Deployment().Platform.Ledger().Total()
	fmt.Printf("lambda bill:  %d invocations, %.1f GB-seconds => $%.8f\n",
		usage.Invocations, usage.GBSeconds, costmodel.LambdaCost(usage))
}
