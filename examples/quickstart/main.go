// Quickstart: start a local InfiniCache deployment, store a 10 MB
// object, read it back through the zero-copy Object handle, and print
// the client and billing statistics.
//
// Run with: go run ./examples/quickstart
package main

import (
	"bytes"
	"context"
	"fmt"
	"log"
	"math/rand"
	"time"

	infinicache "infinicache"
	"infinicache/internal/costmodel"
)

func main() {
	cache, err := infinicache.New(
		infinicache.WithNodesPerProxy(14),
		infinicache.WithNodeMemoryMB(512),
		infinicache.WithShards(10, 2),
		infinicache.WithTimeScale(0.05), // 20x faster than wall clock
		infinicache.WithSeed(42),
	)
	if err != nil {
		log.Fatal(err)
	}
	defer cache.Close()

	client, err := cache.NewClient()
	if err != nil {
		log.Fatal(err)
	}
	defer client.Close()

	obj := make([]byte, 10<<20)
	rand.New(rand.NewSource(1)).Read(obj)
	ctx := context.Background()

	start := time.Now()
	if err := client.PutCtx(ctx, "quickstart/object", obj); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("PUT 10 MB as RS(10+2) chunks across 14 Lambda nodes in %v\n", time.Since(start).Round(time.Millisecond))

	// GetObject hands back the first-d shard buffers without the
	// reassembly copy; stream with WriteTo/Read, or copy with Bytes.
	start = time.Now()
	handle, err := client.GetObject(ctx, "quickstart/object")
	if err != nil {
		log.Fatal(err)
	}
	var out bytes.Buffer
	out.Grow(handle.Size())
	if _, err := handle.WriteTo(&out); err != nil {
		log.Fatal(err)
	}
	handle.Release() // shard buffers go back to the pool
	fmt.Printf("GET 10 MB (first-d parallel fetch, zero-copy)   in %v\n", time.Since(start).Round(time.Millisecond))

	if !bytes.Equal(out.Bytes(), obj) {
		log.Fatal("object corrupted!")
	}
	fmt.Println("object verified byte-for-byte")

	st := client.Stats()
	fmt.Printf("\nclient stats: gets=%d hits=%d puts=%d decodes=%d\n",
		st.Gets.Load(), st.Hits.Load(), st.Puts.Load(), st.Decodes.Load())

	usage := cache.Deployment().Platform.Ledger().Total()
	fmt.Printf("lambda bill:  %d invocations, %.1f GB-seconds => $%.8f\n",
		usage.Invocations, usage.GBSeconds, costmodel.LambdaCost(usage))
}
