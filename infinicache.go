// Package infinicache is a reproduction of "InfiniCache: Exploiting
// Ephemeral Serverless Functions to Build a Cost-Effective Memory Cache"
// (Wang et al., USENIX FAST 2020): an in-memory object cache built
// entirely on ephemeral serverless functions.
//
// The public API wraps a full local deployment — an emulated serverless
// platform (internal/lambdaemu), one or more proxies (internal/proxy),
// and erasure-coding clients (internal/client) — behind a simple
// Get/Put/GetOrLoad interface:
//
//	cache, err := infinicache.New(infinicache.Config{})
//	if err != nil { ... }
//	defer cache.Close()
//
//	client, err := cache.NewClient()
//	if err != nil { ... }
//	if err := client.Put("my-object", data); err != nil { ... }
//	data, err = client.Get("my-object")
//
// Objects are Reed-Solomon encoded into d+p chunks spread over a pool of
// emulated Lambda functions; the platform reclaims functions per a
// configurable policy, and the cache defends itself with parity chunks,
// periodic warm-ups, and the paper's delta-sync backup protocol.
package infinicache

import (
	"time"

	"infinicache/internal/client"
	"infinicache/internal/core"
	"infinicache/internal/lambdaemu"
	"infinicache/internal/vclock"
)

// Config mirrors the paper's deployment knobs. The zero value gives a
// small single-proxy cluster with RS(10+2), 1-minute warm-ups and
// 5-minute backups at real-time pacing.
type Config struct {
	// Proxies is the number of proxies (default 1).
	Proxies int
	// NodesPerProxy is the Lambda pool size per proxy (default 20).
	NodesPerProxy int
	// NodeMemoryMB sizes each cache-node function (default 1536, the
	// paper's production configuration).
	NodeMemoryMB int
	// DataShards and ParityShards pick the RS code (default 10+2).
	DataShards   int
	ParityShards int
	// WarmupInterval is T_warm (default 1 minute; 0 disables).
	WarmupInterval time.Duration
	// BackupInterval is T_bak (default 5 minutes; 0 disables).
	BackupInterval time.Duration
	// ReclaimPolicy drives provider-side reclamation (default none).
	ReclaimPolicy lambdaemu.ReclaimPolicy
	// TimeScale compresses virtual time (e.g. 0.01 runs 100x faster
	// than the wall clock); 0 means real time.
	TimeScale float64
	// EnableRecovery re-inserts EC-reconstructed chunks after degraded
	// reads (default true).
	EnableRecovery bool
	// Seed makes placement and policies deterministic.
	Seed int64
}

// Cache is a running InfiniCache deployment.
type Cache struct {
	d *core.Deployment
}

// Client is the application-facing cache handle (GET/PUT/GetOrLoad/Del).
type Client = client.Client

// Stats re-exports the client counters.
type Stats = client.Stats

// Errors re-exported from the client library.
var (
	// ErrMiss: the key is not cached.
	ErrMiss = client.ErrMiss
	// ErrLost: the key was cached but reclamation destroyed more than
	// p chunks; reload it from the backing store.
	ErrLost = client.ErrLost
)

// New starts a deployment.
func New(cfg Config) (*Cache, error) {
	if cfg.NodesPerProxy == 0 {
		cfg.NodesPerProxy = 20
	}
	if cfg.DataShards == 0 && cfg.ParityShards == 0 {
		cfg.DataShards, cfg.ParityShards = 10, 2
	}
	if cfg.WarmupInterval == 0 {
		cfg.WarmupInterval = time.Minute
	}
	if cfg.BackupInterval == 0 {
		cfg.BackupInterval = 5 * time.Minute
	}
	d, err := core.New(core.Config{
		Proxies:        cfg.Proxies,
		NodesPerProxy:  cfg.NodesPerProxy,
		NodeMemoryMB:   cfg.NodeMemoryMB,
		DataShards:     cfg.DataShards,
		ParityShards:   cfg.ParityShards,
		WarmupInterval: cfg.WarmupInterval,
		BackupInterval: cfg.BackupInterval,
		ReclaimPolicy:  cfg.ReclaimPolicy,
		TimeScale:      cfg.TimeScale,
		EnableRecovery: cfg.EnableRecovery,
		Seed:           cfg.Seed,
	})
	if err != nil {
		return nil, err
	}
	return &Cache{d: d}, nil
}

// NewClient returns a cache client; each client maintains its own proxy
// connections and can be used concurrently.
func (c *Cache) NewClient() (*Client, error) { return c.d.NewClient() }

// Deployment exposes the underlying deployment for advanced use
// (fault injection, platform stats, proxy metrics).
func (c *Cache) Deployment() *core.Deployment { return c.d }

// Clock returns the deployment's (virtual) clock.
func (c *Cache) Clock() vclock.Clock { return c.d.Clock() }

// Close shuts everything down.
func (c *Cache) Close() { c.d.Close() }
