// Package infinicache is a reproduction of "InfiniCache: Exploiting
// Ephemeral Serverless Functions to Build a Cost-Effective Memory Cache"
// (Wang et al., USENIX FAST 2020): an in-memory object cache built
// entirely on ephemeral serverless functions.
//
// The public API wraps a full local deployment — an emulated serverless
// platform (internal/lambdaemu), one or more proxies (internal/proxy),
// and erasure-coding clients (internal/client) — behind a context-first
// streaming interface configured with functional options:
//
//	cache, err := infinicache.New(
//		infinicache.WithShards(10, 2),
//		infinicache.WithNodesPerProxy(14),
//	)
//	if err != nil { ... }
//	defer cache.Close()
//
//	client, err := cache.NewClient()
//	if err != nil { ... }
//	ctx := context.Background()
//	if err := client.PutCtx(ctx, "my-object", data); err != nil { ... }
//
//	obj, err := client.GetObject(ctx, "my-object") // zero-copy handle
//	if err != nil { ... }
//	obj.WriteTo(w) // stream the shards straight out, no reassembly copy
//	obj.Release()  // return the pooled buffers
//
// Batches ride one pipelined burst per owning proxy:
//
//	for _, r := range client.MGet(ctx, keys...) {
//		if r.Err == nil { r.Object.WriteTo(w); r.Object.Release() }
//	}
//
// Large objects stream: PutReader encodes and ships stripe windows as
// the bytes arrive (peak memory stays a few stripes regardless of
// object size), and GetRange fetches only the data chunks a byte range
// intersects:
//
//	if err := client.PutReader(ctx, "big", size, reader); err != nil { ... }
//	page, err := client.GetRange(ctx, "big", 512<<20, 1<<20) // 1 MiB at 512 MiB
//
// Objects are Reed-Solomon encoded into d+p chunks spread over a pool of
// emulated Lambda functions; the platform reclaims functions per a
// configurable policy, and the cache defends itself with parity chunks,
// periodic warm-ups, and the paper's delta-sync backup protocol.
// Cancelling a context propagates end-to-end: the client CANCELs the
// in-flight request so the proxy's dispatcher window slots free up
// instead of serving a caller that left.
package infinicache

import (
	"time"

	"infinicache/internal/client"
	"infinicache/internal/core"
	"infinicache/internal/lambdaemu"
	"infinicache/internal/vclock"
)

// Config mirrors the paper's deployment knobs. The zero value gives a
// small single-proxy cluster with RS(10+2), 1-minute warm-ups and
// 5-minute backups at real-time pacing. Construction goes through
// functional options (New(WithShards(10, 2), ...)); Config remains for
// NewFromConfig and programmatic option application.
type Config struct {
	// Proxies is the number of proxies (default 1).
	Proxies int
	// NodesPerProxy is the Lambda pool size per proxy (default 20).
	NodesPerProxy int
	// NodeMemoryMB sizes each cache-node function (default 1536, the
	// paper's production configuration).
	NodeMemoryMB int
	// DataShards and ParityShards pick the RS code (default 10+2).
	DataShards   int
	ParityShards int
	// WarmupInterval is T_warm (default 1 minute; 0 disables).
	WarmupInterval time.Duration
	// BackupInterval is T_bak (default 5 minutes; 0 disables).
	BackupInterval time.Duration
	// ReclaimPolicy drives provider-side reclamation (default none).
	ReclaimPolicy lambdaemu.ReclaimPolicy
	// TimeScale compresses virtual time (e.g. 0.01 runs 100x faster
	// than the wall clock); 0 means real time.
	TimeScale float64
	// Clock overrides the deployment clock entirely (wins over
	// TimeScale). Harnesses use this to drive a deployment on a
	// hand-stepped vclock.Manual for deterministic replay.
	Clock vclock.Clock
	// HotTierBytes enables a proxy-resident hot-object tier of that
	// many bytes per proxy: GETs for small, frequently-read objects are
	// served straight from proxy memory instead of paying the d+p chunk
	// round trips to Lambda nodes. 0 (the default) disables the tier.
	HotTierBytes int64
	// HotMaxObjectBytes caps the size of objects the hot tier admits
	// (default 1 MiB when the tier is enabled).
	HotMaxObjectBytes int64
	// MigrationRateBytes paces the key-migration plane that streams
	// objects to their new owners after a proxy joins or leaves: a
	// token-bucket refill rate in bytes/second of chunk payload.
	// 0 takes the 32 MiB/s default; negative disables pacing.
	MigrationRateBytes int64
	// MigrationBurstBytes is the migration token bucket's depth
	// (default max(rate/8, 256 KiB)).
	MigrationBurstBytes int64
	// RequestTimeout bounds each client operation (default 60s).
	RequestTimeout time.Duration
	// EnableRecovery re-inserts EC-reconstructed chunks after degraded
	// reads (default true).
	EnableRecovery bool
	// Seed makes placement and policies deterministic.
	Seed int64
	// FaultInjection arms the deterministic chaos plane: a seeded fault
	// engine is threaded through every node link and client dialer,
	// reachable via Deployment().Faults() for chaos scheduling
	// (internal/chaos). Off by default with zero wire-path overhead.
	FaultInjection bool
	// HedgedGets enables hedged degraded reads on every proxy: a GET
	// fans out to exactly d chunks, and a slow or failed chunk is hedged
	// with one extra request to a healthy node after HedgeDelay (0
	// derives the delay from the observed chunk-RTT p99). Per-node
	// circuit breakers steer requests away from black-holed nodes.
	HedgedGets bool
	HedgeDelay time.Duration
}

// Option adjusts the deployment configuration at New time.
type Option func(*Config)

// WithProxies sets the number of proxies.
func WithProxies(n int) Option { return func(c *Config) { c.Proxies = n } }

// WithNodesPerProxy sets the Lambda pool size behind each proxy.
func WithNodesPerProxy(n int) Option { return func(c *Config) { c.NodesPerProxy = n } }

// WithNodeMemoryMB sizes each cache-node function.
func WithNodeMemoryMB(mb int) Option { return func(c *Config) { c.NodeMemoryMB = mb } }

// WithShards picks the RS(d+p) erasure code.
func WithShards(data, parity int) Option {
	return func(c *Config) { c.DataShards, c.ParityShards = data, parity }
}

// WithWarmupInterval sets T_warm (§4.2); 0 or negative disables
// warm-ups. (Config keeps 0 as "take the default", so the option maps
// disable requests to the negative sentinel New resolves.)
func WithWarmupInterval(d time.Duration) Option {
	return func(c *Config) {
		if d <= 0 {
			d = -1
		}
		c.WarmupInterval = d
	}
}

// WithBackupInterval sets T_bak (§4.2); 0 or negative disables
// delta-sync backups.
func WithBackupInterval(d time.Duration) Option {
	return func(c *Config) {
		if d <= 0 {
			d = -1
		}
		c.BackupInterval = d
	}
}

// WithHotTier gives each proxy a resident hot-object tier of bytes
// bytes: small, frequently-read objects are served from proxy memory,
// short-circuiting the Lambda round trip (admission is write-through
// and read-through, frequency-gated; overwrites, deletes and cancelled
// PUTs invalidate synchronously). Off by default; 0 or negative
// disables.
func WithHotTier(bytes int64) Option {
	return func(c *Config) {
		if bytes < 0 {
			bytes = 0
		}
		c.HotTierBytes = bytes
	}
}

// WithHotTierMaxObject caps the object size the hot tier admits
// (default 1 MiB). Only meaningful together with WithHotTier.
func WithHotTierMaxObject(bytes int64) Option {
	return func(c *Config) { c.HotMaxObjectBytes = bytes }
}

// WithReclaimPolicy drives provider-side reclamation.
func WithReclaimPolicy(p lambdaemu.ReclaimPolicy) Option {
	return func(c *Config) { c.ReclaimPolicy = p }
}

// WithTimeScale compresses virtual time (0.01 = 100x faster).
func WithTimeScale(s float64) Option { return func(c *Config) { c.TimeScale = s } }

// WithClock runs the deployment on an explicit clock (wins over
// WithTimeScale); pass a *vclock.Manual for deterministic tests.
func WithClock(clk vclock.Clock) Option { return func(c *Config) { c.Clock = clk } }

// WithTimeout bounds each client operation (the default for clients
// made by NewClient; override per client with ClientTimeout).
func WithTimeout(d time.Duration) Option { return func(c *Config) { c.RequestTimeout = d } }

// WithRecovery toggles client-side EC chunk recovery after degraded
// reads.
func WithRecovery(on bool) Option { return func(c *Config) { c.EnableRecovery = on } }

// WithSeed makes placement and policies deterministic.
func WithSeed(seed int64) Option { return func(c *Config) { c.Seed = seed } }

// WithMigrationRate paces post-churn key migration at rate bytes/second
// with the given token-bucket depth (burst 0 picks max(rate/8,
// 256 KiB)). Rate 0 takes the 32 MiB/s default; a negative rate
// disables pacing entirely.
func WithMigrationRate(rate, burst int64) Option {
	return func(c *Config) {
		c.MigrationRateBytes = rate
		c.MigrationBurstBytes = burst
	}
}

// WithFaultInjection arms the deterministic chaos plane (see
// Config.FaultInjection).
func WithFaultInjection() Option { return func(c *Config) { c.FaultInjection = true } }

// WithHedgedGets enables hedged degraded reads with per-node circuit
// breakers; delay 0 derives the hedge delay from the observed
// chunk-RTT p99 (see Config.HedgedGets).
func WithHedgedGets(delay time.Duration) Option {
	return func(c *Config) { c.HedgedGets, c.HedgeDelay = true, delay }
}

// Cache is a running InfiniCache deployment.
type Cache struct {
	d *core.Deployment
}

// Client is the application-facing cache handle: context-first
// GetObject/GetCtx/PutCtx/DelCtx/GetOrLoadCtx plus the batched
// MGet/MPut, with deprecated context-free wrappers.
type Client = client.Client

// Object is the zero-copy handle a GetObject returns: stream it with
// WriteTo/Read or copy with Bytes, then Release it to recycle the
// pooled shard buffers.
type Object = client.Object

// KV, GetResult and PutResult are the batch-operation inputs/outcomes.
type (
	KV        = client.KV
	GetResult = client.GetResult
	PutResult = client.PutResult
)

// Stats re-exports the client counters.
type Stats = client.Stats

// ClientOption tunes one client made by NewClient.
type ClientOption = client.Option

// Per-client options (NewClient(...)): request timeout, EC recovery,
// RS code, placement seed and streaming stripe-shard overrides.
var (
	ClientTimeout  = client.WithRequestTimeout
	ClientRecovery = client.WithRecovery
	ClientShards   = client.WithShards
	ClientSeed     = client.WithSeed
	// ClientStripeShard sets the target data-shard size for streaming
	// PUTs: each PutReader stripe carries shard×d data bytes, so it
	// bounds both the per-chunk payload and the client's resident
	// window. Default 1 MiB.
	ClientStripeShard = client.WithStripeShard
)

// Errors re-exported from the client library.
var (
	// ErrMiss: the key is not cached.
	ErrMiss = client.ErrMiss
	// ErrLost: the key was cached but reclamation destroyed more than
	// p chunks; reload it from the backing store.
	ErrLost = client.ErrLost
	// ErrTimeout: the operation outlived the request timeout.
	ErrTimeout = client.ErrTimeout
	// ErrRejected: the proxy refused the request even after the
	// client's internal retries (e.g. a chunk-timeout window during a
	// racing write or backup swap); reload from the backing store.
	ErrRejected = client.ErrRejected
	// ErrReleased: an Object was used after Release.
	ErrReleased = client.ErrReleased
)

// New starts a deployment configured by opts.
func New(opts ...Option) (*Cache, error) {
	var cfg Config
	for _, opt := range opts {
		opt(&cfg)
	}
	return NewFromConfig(cfg)
}

// NewFromConfig starts a deployment from an explicit Config.
//
// Deprecated: use New with functional options.
func NewFromConfig(cfg Config) (*Cache, error) {
	if cfg.NodesPerProxy == 0 {
		cfg.NodesPerProxy = 20
	}
	if cfg.DataShards == 0 && cfg.ParityShards == 0 {
		cfg.DataShards, cfg.ParityShards = 10, 2
	}
	if cfg.WarmupInterval == 0 {
		cfg.WarmupInterval = time.Minute
	} else if cfg.WarmupInterval < 0 {
		cfg.WarmupInterval = 0 // explicit disable (core: 0 = off)
	}
	if cfg.BackupInterval == 0 {
		cfg.BackupInterval = 5 * time.Minute
	} else if cfg.BackupInterval < 0 {
		cfg.BackupInterval = 0
	}
	d, err := core.New(core.Config{
		Proxies:             cfg.Proxies,
		NodesPerProxy:       cfg.NodesPerProxy,
		NodeMemoryMB:        cfg.NodeMemoryMB,
		DataShards:          cfg.DataShards,
		ParityShards:        cfg.ParityShards,
		HotTierBytes:        cfg.HotTierBytes,
		HotMaxObjectBytes:   cfg.HotMaxObjectBytes,
		WarmupInterval:      cfg.WarmupInterval,
		BackupInterval:      cfg.BackupInterval,
		ReclaimPolicy:       cfg.ReclaimPolicy,
		MigrationRateBytes:  cfg.MigrationRateBytes,
		MigrationBurstBytes: cfg.MigrationBurstBytes,
		TimeScale:           cfg.TimeScale,
		Clock:               cfg.Clock,
		RequestTimeout:      cfg.RequestTimeout,
		EnableRecovery:      cfg.EnableRecovery,
		Seed:                cfg.Seed,
		FaultInjection:      cfg.FaultInjection,
		HedgedGets:          cfg.HedgedGets,
		HedgeDelay:          cfg.HedgeDelay,
	})
	if err != nil {
		return nil, err
	}
	return &Cache{d: d}, nil
}

// NewClient returns a cache client; each client maintains its own proxy
// connections and can be used concurrently. Options override the
// deployment defaults for this client only.
func (c *Cache) NewClient(opts ...ClientOption) (*Client, error) { return c.d.NewClient(opts...) }

// Deployment exposes the underlying deployment for advanced use
// (fault injection, platform stats, proxy metrics).
func (c *Cache) Deployment() *core.Deployment { return c.d }

// Clock returns the deployment's (virtual) clock.
func (c *Cache) Clock() vclock.Clock { return c.d.Clock() }

// Close shuts everything down.
func (c *Cache) Close() { c.d.Close() }
