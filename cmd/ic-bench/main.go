// ic-bench runs the live-system microbenchmarks (Figures 4, 11, 12,
// plus the batched-client and hot-tier probes) against a real
// in-process deployment.
//
// Usage:
//
//	ic-bench [-fig 4|11|11f|12|batch|hot|all] [-samples 5] [-quick]
package main

import (
	"flag"
	"fmt"
	"strings"

	"infinicache/internal/exps"
	"infinicache/internal/gf256"
)

func main() {
	fig := flag.String("fig", "all", "which microbenchmark to run")
	samples := flag.Int("samples", 5, "samples per cell")
	quick := flag.Bool("quick", false, "use the reduced grid")
	seed := flag.Int64("seed", 1, "random seed")
	flag.Parse()

	// The selected GF(256) kernel dominates EC encode/decode throughput,
	// so every run records it next to its numbers.
	fmt.Printf("gf256 kernel: %s\n", gf256.Kernel())

	want := func(name string) bool {
		return *fig == "all" || strings.EqualFold(*fig, name)
	}
	if want("4") {
		fmt.Println(exps.Figure4(*samples, *seed))
	}
	if want("11") {
		cfg := exps.DefaultMicroConfig()
		if *quick {
			cfg = exps.QuickMicroConfig()
		}
		cfg.Samples = *samples
		fmt.Println(exps.Figure11(cfg))
	}
	if want("11f") {
		fmt.Println(exps.Figure11f(*samples, *seed))
	}
	if want("12") {
		fmt.Println(exps.Figure12([]int{1, 2, 4, 8}, 2, *seed))
	}
	if want("batch") {
		keys := 24
		if *quick {
			keys = 8
		}
		fmt.Println(exps.BatchProbe(keys, *samples, *seed))
	}
	if want("hot") {
		keys := 16
		if *quick {
			keys = 6
		}
		fmt.Println(exps.HotTierProbe(keys, *samples, 4<<10, *seed))
	}
}
