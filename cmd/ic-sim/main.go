// ic-sim replays a trace (synthetic or from a file) against the modeled
// InfiniCache deployment and prints Table 1/Figure 13-style results.
//
// Usage:
//
//	ic-sim [-hours 50] [-trace file.csv] [-format csv|ibmdocker|azure]
//	       [-nodes 400] [-mem 1536] [-d 10] [-p 2] [-backup 5m]
//	       [-warm 1m] [-hot bytes] [-hot-max bytes] [-large-only]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	"infinicache/internal/exps"
	"infinicache/internal/sim"
	"infinicache/internal/workload"
)

func main() {
	hours := flag.Int("hours", 50, "synthetic trace length (ignored with -trace)")
	traceFile := flag.String("trace", "", "trace file to replay")
	format := flag.String("format", "csv",
		"trace format: "+strings.Join(workload.Formats(), ", "))
	nodes := flag.Int("nodes", 400, "Lambda pool size")
	mem := flag.Int("mem", 1536, "Lambda memory MB")
	d := flag.Int("d", 10, "data shards")
	p := flag.Int("p", 2, "parity shards")
	backup := flag.Duration("backup", 5*time.Minute, "T_bak (0 disables backup)")
	warm := flag.Duration("warm", time.Minute, "T_warm")
	hot := flag.Int64("hot", 0, "proxy hot-tier capacity in bytes (0 disables; adds a hot-enabled column)")
	hotMax := flag.Int64("hot-max", 0, "hot-tier admission threshold in bytes (0 = 1 MiB)")
	largeOnly := flag.Bool("large-only", false, "replay only objects >= 10 MB")
	seed := flag.Int64("seed", 1, "random seed")
	flag.Parse()

	var trace *workload.Trace
	if *traceFile != "" {
		fm, err := workload.ParseFormat(*format)
		if err != nil {
			log.Fatal(err)
		}
		f, err := os.Open(*traceFile)
		if err != nil {
			log.Fatal(err)
		}
		trace, err = workload.ReadTrace(fm, f)
		f.Close()
		if err != nil {
			log.Fatal(err)
		}
	} else {
		trace = exps.CanonicalTrace(*hours, *seed)
	}
	if *largeOnly {
		trace = trace.LargeOnly()
	}
	st := trace.ComputeStats()
	fmt.Printf("trace: %d records, %d objects, WSS %d GB, %.0f GETs/hour\n\n",
		st.Records, st.DistinctObjects, st.WorkingSetBytes>>30, st.GetsPerHour)

	cfg := sim.Config{
		Nodes:          *nodes,
		NodeMemoryMB:   *mem,
		DataShards:     *d,
		ParityShards:   *p,
		WarmupInterval: *warm,
		BackupInterval: *backup,
		ReclaimPolicy:  exps.CanonicalPolicy(),
		Seed:           *seed,
	}
	res := sim.Run(cfg, trace)

	report := func(name string, r *sim.Result) {
		fmt.Printf("%s:\n", name)
		fmt.Printf("  hit ratio:   %.1f%% (%d hits / %d gets)\n", r.HitRatio()*100, r.Hits, r.Gets)
		if r.HotHits > 0 {
			fmt.Printf("  hot hits:    %d (%.1f%% of gets, served from proxy memory)\n",
				r.HotHits, 100*float64(r.HotHits)/float64(r.Gets))
		}
		fmt.Printf("  cold misses: %d\n", r.ColdMisses)
		fmt.Printf("  RESETs:      %d\n", r.Resets)
		fmt.Printf("  recoveries:  %d chunks\n", r.Recoveries)
		fmt.Printf("  reclaims:    %d instances\n", r.Reclaims)
		fmt.Printf("  cost:        $%.2f total (serving $%.2f, warm-up $%.2f, backup $%.2f)\n",
			r.TotalCost(), r.ServingCost, r.WarmupCost, r.BackupCost)
		if r.Gets > 0 {
			fmt.Printf("  availability: %.2f%% of accesses\n", 100*(1-float64(r.Resets)/float64(r.Gets)))
		}
	}
	report(fmt.Sprintf("InfiniCache (%d x %d MB, RS(%d+%d), warm %v, backup %v)",
		*nodes, *mem, *d, *p, *warm, *backup), res)

	if *hot > 0 {
		hotCfg := cfg
		hotCfg.HotTierBytes = *hot
		hotCfg.HotMaxObjectBytes = *hotMax
		hotRes := sim.Run(hotCfg, trace)
		fmt.Println()
		report(fmt.Sprintf("InfiniCache + hot tier (%d MB cap)", *hot>>20), hotRes)
		fmt.Printf("\nhot tier saves $%.2f of serving cost (%.1fx cheaper serving)\n",
			res.ServingCost-hotRes.ServingCost, res.ServingCost/hotRes.ServingCost)
	}

	ec := sim.RunElastiCache("cache.r5.24xlarge", trace, *seed+1)
	fmt.Printf("\nElastiCache (cache.r5.24xlarge): hit %.1f%%, cost $%.2f (%.0fx more expensive)\n",
		ec.HitRatio()*100, ec.TotalCost, ec.TotalCost/res.TotalCost())
}
