// ic-sim replays a trace (synthetic or CSV) against the modeled
// InfiniCache deployment and prints Table 1/Figure 13-style results.
//
// Usage:
//
//	ic-sim [-hours 50] [-trace file.csv] [-nodes 400] [-mem 1536]
//	       [-d 10] [-p 2] [-backup 5m] [-warm 1m] [-large-only]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"infinicache/internal/exps"
	"infinicache/internal/sim"
	"infinicache/internal/workload"
)

func main() {
	hours := flag.Int("hours", 50, "synthetic trace length (ignored with -trace)")
	traceFile := flag.String("trace", "", "CSV trace to replay (timestamp_ns,op,key,size_bytes)")
	nodes := flag.Int("nodes", 400, "Lambda pool size")
	mem := flag.Int("mem", 1536, "Lambda memory MB")
	d := flag.Int("d", 10, "data shards")
	p := flag.Int("p", 2, "parity shards")
	backup := flag.Duration("backup", 5*time.Minute, "T_bak (0 disables backup)")
	warm := flag.Duration("warm", time.Minute, "T_warm")
	largeOnly := flag.Bool("large-only", false, "replay only objects >= 10 MB")
	seed := flag.Int64("seed", 1, "random seed")
	flag.Parse()

	var trace *workload.Trace
	if *traceFile != "" {
		f, err := os.Open(*traceFile)
		if err != nil {
			log.Fatal(err)
		}
		trace, err = workload.ReadCSV(f)
		f.Close()
		if err != nil {
			log.Fatal(err)
		}
	} else {
		trace = exps.CanonicalTrace(*hours, *seed)
	}
	if *largeOnly {
		trace = trace.LargeOnly()
	}
	st := trace.ComputeStats()
	fmt.Printf("trace: %d records, %d objects, WSS %d GB, %.0f GETs/hour\n\n",
		st.Records, st.DistinctObjects, st.WorkingSetBytes>>30, st.GetsPerHour)

	res := sim.Run(sim.Config{
		Nodes:          *nodes,
		NodeMemoryMB:   *mem,
		DataShards:     *d,
		ParityShards:   *p,
		WarmupInterval: *warm,
		BackupInterval: *backup,
		ReclaimPolicy:  exps.CanonicalPolicy(),
		Seed:           *seed,
	}, trace)

	fmt.Printf("InfiniCache (%d x %d MB, RS(%d+%d), warm %v, backup %v):\n",
		*nodes, *mem, *d, *p, *warm, *backup)
	fmt.Printf("  hit ratio:   %.1f%% (%d hits / %d gets)\n", res.HitRatio()*100, res.Hits, res.Gets)
	fmt.Printf("  cold misses: %d\n", res.ColdMisses)
	fmt.Printf("  RESETs:      %d\n", res.Resets)
	fmt.Printf("  recoveries:  %d chunks\n", res.Recoveries)
	fmt.Printf("  reclaims:    %d instances\n", res.Reclaims)
	fmt.Printf("  cost:        $%.2f total (serving $%.2f, warm-up $%.2f, backup $%.2f)\n",
		res.TotalCost(), res.ServingCost, res.WarmupCost, res.BackupCost)
	if res.Gets > 0 {
		fmt.Printf("  availability: %.2f%% of accesses\n", 100*(1-float64(res.Resets)/float64(res.Gets)))
	}

	ec := sim.RunElastiCache("cache.r5.24xlarge", trace, *seed+1)
	fmt.Printf("\nElastiCache (cache.r5.24xlarge): hit %.1f%%, cost $%.2f (%.0fx more expensive)\n",
		ec.HitRatio()*100, ec.TotalCost, ec.TotalCost/res.TotalCost())
}
