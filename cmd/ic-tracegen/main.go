// ic-tracegen synthesises IBM-Docker-registry-like traces (Figure 1
// characteristics) and writes them in any supported trace format.
//
// Usage:
//
//	ic-tracegen [-hours 50] [-objects 18000] [-rate 3654] [-large-only]
//	            [-max-size bytes] [-format csv|ibmdocker|azure]
//	            [-seed 1] [-o trace.csv]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	"infinicache/internal/workload"
)

func main() {
	hours := flag.Int("hours", 50, "trace duration in hours")
	objects := flag.Int("objects", 0, "catalogue size (0 = Dallas-like default)")
	rate := flag.Float64("rate", 0, "mean GETs per hour (0 = default 3654)")
	largeOnly := flag.Bool("large-only", false, "only objects >= 10 MB")
	maxSize := flag.Int64("max-size", 0, "cap object sizes in bytes (0 = default 4 GB)")
	format := flag.String("format", "csv",
		"output format: "+strings.Join(workload.Formats(), ", "))
	quantize := flag.Duration("quantize", 0,
		"round record times to this granularity (formats with coarse tick resolution)")
	seed := flag.Int64("seed", 1, "random seed")
	out := flag.String("o", "trace.csv", "output file (- for stdout)")
	flag.Parse()

	f, err := workload.ParseFormat(*format)
	if err != nil {
		log.Fatal(err)
	}
	tr := workload.Generate(workload.Config{
		Objects:         *objects,
		Duration:        time.Duration(*hours) * time.Hour,
		MeanGetsPerHour: *rate,
		LargeOnly:       *largeOnly,
		MaxObjectBytes:  *maxSize,
		Seed:            *seed,
	})
	if *quantize > 0 {
		for i := range tr.Records {
			tr.Records[i].Time = tr.Records[i].Time.Round(*quantize)
		}
	}
	st := tr.ComputeStats()
	fmt.Fprintf(os.Stderr, "generated %d records, %d objects, WSS %d GB, %.0f GETs/hour, %.0f%% large bytes\n",
		st.Records, st.DistinctObjects, st.WorkingSetBytes>>30, st.GetsPerHour, st.LargeBytePct*100)

	w := os.Stdout
	if *out != "-" {
		file, err := os.Create(*out)
		if err != nil {
			log.Fatal(err)
		}
		defer file.Close()
		w = file
	}
	if err := workload.WriteTrace(f, w, tr); err != nil {
		log.Fatal(err)
	}
}
