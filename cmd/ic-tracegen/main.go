// ic-tracegen synthesises IBM-Docker-registry-like traces (Figure 1
// characteristics) and writes them as CSV.
//
// Usage:
//
//	ic-tracegen [-hours 50] [-objects 18000] [-rate 3654] [-large-only]
//	            [-seed 1] [-o trace.csv]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"infinicache/internal/workload"
)

func main() {
	hours := flag.Int("hours", 50, "trace duration in hours")
	objects := flag.Int("objects", 0, "catalogue size (0 = Dallas-like default)")
	rate := flag.Float64("rate", 0, "mean GETs per hour (0 = default 3654)")
	largeOnly := flag.Bool("large-only", false, "only objects >= 10 MB")
	seed := flag.Int64("seed", 1, "random seed")
	out := flag.String("o", "trace.csv", "output file (- for stdout)")
	flag.Parse()

	tr := workload.Generate(workload.Config{
		Objects:         *objects,
		Duration:        time.Duration(*hours) * time.Hour,
		MeanGetsPerHour: *rate,
		LargeOnly:       *largeOnly,
		Seed:            *seed,
	})
	st := tr.ComputeStats()
	fmt.Fprintf(os.Stderr, "generated %d records, %d objects, WSS %d GB, %.0f GETs/hour, %.0f%% large bytes\n",
		st.Records, st.DistinctObjects, st.WorkingSetBytes>>30, st.GetsPerHour, st.LargeBytePct*100)

	w := os.Stdout
	if *out != "-" {
		f, err := os.Create(*out)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		w = f
	}
	if err := tr.WriteCSV(w); err != nil {
		log.Fatal(err)
	}
}
