// ic-repro regenerates every table and figure from the paper's
// evaluation, writing one text report per experiment.
//
// Usage:
//
//	ic-repro [-out results] [-hours 50] [-fig all|1|4|8|9|11|12|13|14|15|16|17|table1|availability] [-quick]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strings"

	"infinicache/internal/exps"
)

func main() {
	out := flag.String("out", "results", "output directory")
	hours := flag.Int("hours", exps.TraceHours, "trace replay length in hours")
	fig := flag.String("fig", "all", "which experiment to run")
	quick := flag.Bool("quick", false, "smaller grids / fewer samples")
	seed := flag.Int64("seed", 1, "base random seed")
	flag.Parse()

	if err := os.MkdirAll(*out, 0o755); err != nil {
		log.Fatal(err)
	}
	write := func(name, content string) {
		path := filepath.Join(*out, name)
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %s\n", path)
	}
	want := func(name string) bool {
		return *fig == "all" || strings.EqualFold(*fig, name)
	}

	samples := 10
	micro := exps.DefaultMicroConfig()
	if *quick {
		samples = 3
		micro = exps.QuickMicroConfig()
	}

	if want("1") {
		write("figure01_trace.txt", exps.Figure1(*hours, *seed))
	}
	if want("4") {
		write("figure04_vm_contention.txt", exps.Figure4(samples, *seed))
	}
	if want("8") {
		write("figure08_reclaim_timeline.txt", exps.Figure8(*seed))
	}
	if want("9") {
		write("figure09_reclaim_distribution.txt", exps.Figure9(*seed))
	}
	if want("11") {
		write("figure11_microbenchmark.txt", exps.Figure11(micro))
		write("figure11f_vs_elasticache.txt", exps.Figure11f(samples, *seed))
	}
	if want("12") {
		write("figure12_scalability.txt", exps.Figure12([]int{1, 2, 4, 8}, 2, *seed))
	}
	if want("13") {
		write("figure13_cost.txt", exps.Figure13(*hours, *seed))
	}
	if want("14") {
		write("figure14_fault_tolerance.txt", exps.Figure14(*hours, *seed))
	}
	if want("15") {
		write("figure15_latency_cdf.txt", exps.Figure15(*hours, *seed))
	}
	if want("16") {
		write("figure16_normalized_latency.txt", exps.Figure16(*hours, *seed))
	}
	if want("17") {
		write("figure17_cost_crossover.txt", exps.Figure17())
	}
	if want("table1") {
		write("table1_hit_ratios.txt", exps.Table1(*hours, *seed))
	}
	if want("availability") {
		write("availability_model.txt", exps.AvailabilityAnalysis())
	}
}
