// ic-replay replays a trace open-loop against a pluggable cache
// backend and prints a Figure 11/13-style report: per-outcome latency
// percentiles measured from each request's scheduled arrival, hit
// ratio, and backend cost.
//
// Usage:
//
//	ic-replay -trace trace.csv [-format csv|ibmdocker|azure]
//	          [-backend infinicache|redis|dummy]
//	          [-speedup 60] [-sessions 8] [-batch 8] [-size-cap 1048576]
//	          [-preload] [-no-insert]
//	          [-proxies 1] [-nodes 20] [-mem 1536] [-d 10] [-p 2]
//	          [-warm 1m] [-backup 5m] [-hot bytes] [-hot-max bytes]
//	          [-clients 1] [-churn "30ms:+1,2s:-1"] [-mig-rate bytes]
//	          [-chaos "0s:corrupt:*:0.02:2s,10ms:reclaim:p0-node0:all"]
//	          [-hedged] [-timescale 0.01] [-shards 1] [-redis-mem bytes]
//	          [-instance cache.r5.large] [-seed 1]
//
// Without -trace, a canonical synthetic trace of -hours hours is
// generated (the same generator as ic-sim, so results line up).
// -speedup divides trace inter-arrival times; 0 disables pacing and
// replays as fast as the sessions drain. -timescale additionally
// compresses the infinicache/redis backends' virtual clock, which
// speeds up the replay AND every deployment timer (warm-ups, billing,
// reclamation) coherently — use -speedup to change only the offered
// load.
//
// -clients n replays through n independent InfiniCache clients spread
// round-robin across the session workers, so each client keeps its own
// connections and ring view. -churn drives membership churn during the
// replay: a comma-separated schedule of virtual-time offsets from the
// replay start, each adding (+N) or removing (-N) proxies; after the
// replay the run waits for migration to quiesce and reports how many
// keys moved.
//
// -chaos drives the deterministic fault-injection plane during the
// replay: a comma-separated schedule of OFFSET:KIND[:args] events
// (reclaim storms, proxy crashes, link corruption/rot/latency/hangup,
// dial refusals — see internal/chaos.Parse for the grammar), seeded and
// paced on the virtual clock so a fixed seed reproduces the same fault
// sequence. After the replay a fault/recovery report is printed:
// injected counts per class and the defence-side counters (checksum
// failures, hedged requests, breaker trips, EC recoveries, repairs).
// -hedged additionally enables hedged degraded GETs with per-node
// circuit breakers on every proxy.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"infinicache"
	"infinicache/internal/chaos"
	"infinicache/internal/core"
	"infinicache/internal/exps"
	"infinicache/internal/replay"
	"infinicache/internal/stats"
	"infinicache/internal/vclock"
	"infinicache/internal/workload"
)

func main() {
	traceFile := flag.String("trace", "", "trace file to replay (default: synthetic)")
	format := flag.String("format", "csv",
		"trace format: "+strings.Join(workload.Formats(), ", "))
	hours := flag.Int("hours", 1, "synthetic trace length (ignored with -trace)")
	backend := flag.String("backend", "infinicache", "backend: infinicache, redis, dummy")
	speedup := flag.Float64("speedup", 1, "replay speed factor (0 = unpaced)")
	sessions := flag.Int("sessions", 8, "concurrent client sessions")
	batch := flag.Int("batch", 1, "MGet burst cap for queued requests (>= 2 enables batching)")
	sizeCap := flag.Int64("size-cap", 0, "clamp object sizes to this many bytes (0 = off)")
	preload := flag.Bool("preload", false, "bulk-insert every distinct object before replaying")
	noInsert := flag.Bool("no-insert", false, "disable GET-upon-miss insertion")
	seed := flag.Int64("seed", 1, "random seed")

	proxies := flag.Int("proxies", 1, "infinicache: proxies at start")
	nodes := flag.Int("nodes", 20, "infinicache: Lambda pool size")
	mem := flag.Int("mem", 1536, "infinicache: Lambda memory MB")
	d := flag.Int("d", 10, "infinicache: data shards")
	p := flag.Int("p", 2, "infinicache: parity shards")
	warm := flag.Duration("warm", time.Minute, "infinicache: T_warm (0 disables)")
	backup := flag.Duration("backup", 5*time.Minute, "infinicache: T_bak (0 disables)")
	hot := flag.Int64("hot", 0, "infinicache: proxy hot-tier bytes (0 disables)")
	hotMax := flag.Int64("hot-max", 0, "infinicache: hot-tier admission cap (0 = 1 MiB)")
	clients := flag.Int("clients", 1, "infinicache: independent clients spread across sessions")
	churnSpec := flag.String("churn", "", "infinicache: churn schedule, e.g. '30ms:+1,2s:-1' (virtual offsets from replay start)")
	chaosSpec := flag.String("chaos", "", "infinicache: chaos schedule, e.g. '0s:corrupt:*:0.02:2s,10ms:reclaim:p0-node0:all' (see internal/chaos)")
	hedged := flag.Bool("hedged", false, "infinicache: enable hedged degraded GETs with per-node circuit breakers")
	migRate := flag.Int64("mig-rate", 0, "infinicache: migration pacing bytes/sec (0 = 32 MiB/s default, negative = unpaced)")
	timescale := flag.Float64("timescale", 0, "virtual clock scale for infinicache/redis (0.01 = 100x faster; 0 = real time)")

	shards := flag.Int("shards", 1, "redis: number of cache servers")
	redisMem := flag.Int64("redis-mem", 4<<30, "redis: memory bytes per shard")
	instance := flag.String("instance", "cache.r5.large", "redis: instance type for pricing")
	flag.Parse()

	churn, err := parseChurn(*churnSpec)
	if err != nil {
		log.Fatalf("-churn: %v", err)
	}
	if (len(churn) > 0 || *clients > 1) && *backend != "infinicache" {
		log.Fatalf("-churn and -clients need -backend infinicache (got %q)", *backend)
	}
	var chaosSched *chaos.Schedule
	if *chaosSpec != "" {
		if *backend != "infinicache" {
			log.Fatalf("-chaos needs -backend infinicache (got %q)", *backend)
		}
		if chaosSched, err = chaos.Parse(*chaosSpec); err != nil {
			log.Fatalf("-chaos: %v", err)
		}
	}

	var trace *workload.Trace
	if *traceFile != "" {
		fm, err := workload.ParseFormat(*format)
		if err != nil {
			log.Fatal(err)
		}
		f, err := os.Open(*traceFile)
		if err != nil {
			log.Fatal(err)
		}
		trace, err = workload.ReadTrace(fm, f)
		f.Close()
		if err != nil {
			log.Fatal(err)
		}
	} else {
		trace = exps.CanonicalTrace(*hours, *seed)
	}
	st := trace.ComputeStats()
	fmt.Printf("trace: %d records, %d objects, WSS %.1f MB, %.0f GETs/hour\n",
		st.Records, st.DistinctObjects, float64(st.WorkingSetBytes)/(1<<20), st.GetsPerHour)

	var clk vclock.Clock = vclock.NewReal()
	if *timescale > 0 {
		clk = vclock.NewScaled(*timescale)
	}

	var b replay.Backend
	var cache *infinicache.Cache
	var sessionBackends []replay.Backend
	var icBackends []*replay.InfiniCacheBackend
	switch *backend {
	case "dummy":
		b = replay.NewDummy()
	case "redis":
		rb, err := replay.NewRedis(replay.RedisConfig{
			Clock:        clk,
			Shards:       *shards,
			MemoryBytes:  *redisMem,
			InstanceType: *instance,
		})
		if err != nil {
			log.Fatal(err)
		}
		b = rb
	case "infinicache":
		opts := []infinicache.Option{
			infinicache.WithProxies(*proxies),
			infinicache.WithNodesPerProxy(*nodes),
			infinicache.WithNodeMemoryMB(*mem),
			infinicache.WithShards(*d, *p),
			infinicache.WithWarmupInterval(*warm),
			infinicache.WithBackupInterval(*backup),
			infinicache.WithMigrationRate(*migRate, 0),
			infinicache.WithSeed(*seed),
		}
		if *hot > 0 {
			opts = append(opts, infinicache.WithHotTier(*hot))
			if *hotMax > 0 {
				opts = append(opts, infinicache.WithHotTierMaxObject(*hotMax))
			}
		}
		if *timescale > 0 {
			opts = append(opts, infinicache.WithTimeScale(*timescale))
		}
		if chaosSched != nil {
			// The chaos integrity invariant depends on the repair plane:
			// corrupt or reclaimed chunks become erasures the client
			// reconstructs and re-inserts.
			opts = append(opts, infinicache.WithFaultInjection(), infinicache.WithRecovery(true))
		}
		if *hedged {
			opts = append(opts, infinicache.WithHedgedGets(0))
		}
		cache, err = infinicache.New(opts...)
		if err != nil {
			log.Fatal(err)
		}
		defer cache.Close()
		clk = cache.Clock()
		ib, err := replay.NewInfiniCache(cache)
		if err != nil {
			log.Fatal(err)
		}
		b = ib
		icBackends = append(icBackends, ib)
		if *clients > 1 {
			sessionBackends = []replay.Backend{ib}
			for i := 1; i < *clients; i++ {
				extra, err := replay.NewInfiniCache(cache)
				if err != nil {
					log.Fatal(err)
				}
				defer extra.Close()
				sessionBackends = append(sessionBackends, extra)
				icBackends = append(icBackends, extra)
			}
		}
		if chaosSched != nil {
			// Under chaos every hit is byte-verified against the written
			// pattern: the harness-level oracle for "zero corrupt bytes
			// returned", independent of the protocol's own checksums.
			for _, ib := range icBackends {
				ib.VerifyReads(true)
			}
		}
	default:
		log.Fatalf("unknown backend %q (want infinicache, redis, or dummy)", *backend)
	}
	defer b.Close()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	if *preload {
		n, err := replay.Preload(ctx, b, trace.Records, *sizeCap, max(*batch, 16))
		if err != nil {
			log.Fatalf("preload: %v", err)
		}
		fmt.Printf("preloaded %d objects\n", n)
	}

	cfg := replay.Config{
		Clock:           clk,
		Speedup:         *speedup,
		Sessions:        *sessions,
		Batch:           *batch,
		SizeCap:         *sizeCap,
		NoInsertOnMiss:  *noInsert,
		SessionBackends: sessionBackends,
	}
	if *speedup == 0 {
		cfg.Speedup = -1 // CLI convention: 0 means unpaced
	}
	fmt.Printf("replaying against %s (%d sessions, %d clients, speedup %v)...\n\n",
		*backend, *sessions, max(*clients, 1), *speedup)

	var churnWG sync.WaitGroup
	if len(churn) > 0 {
		churnWG.Add(1)
		go func() {
			defer churnWG.Done()
			runChurn(cache.Deployment(), clk, churn)
		}()
	}

	// The chaos scheduler starts after any preload: offsets are virtual
	// time from the replay start, and the preloaded baseline is what the
	// integrity report measures losses against.
	var chaosRunner *chaos.Runner
	if chaosSched != nil {
		dep := cache.Deployment()
		chaosRunner = chaos.New(chaosSched, clk, dep.Faults(), dep.Platform, dep)
		if err := chaosRunner.Start(); err != nil {
			log.Fatalf("-chaos: %v", err)
		}
	}

	res, err := replay.Run(ctx, cfg, trace, b)
	if res != nil {
		fmt.Print(res.Summary())
	}
	if err != nil {
		log.Fatalf("replay interrupted: %v", err)
	}

	if len(churn) > 0 {
		churnWG.Wait()
		dep := cache.Deployment()
		if qerr := dep.QuiesceMigration(2 * time.Minute); qerr != nil {
			log.Fatalf("churn: migration did not quiesce: %v", qerr)
		}
		var keys, bytes, drops int64
		for _, p := range dep.Proxies {
			st := p.Stats()
			keys += st.MigratedKeys.Load()
			bytes += st.MigratedBytes.Load()
			drops += st.MigrationDrops.Load()
		}
		fmt.Printf("churn: epoch v%d, %d proxies; migrated %d keys (%.1f MB chunk payload), %d drops\n",
			dep.Epoch().Version(), len(dep.ProxyInfos()), keys, float64(bytes)/(1<<20), drops)
	}

	if chaosRunner != nil {
		chaosRunner.Stop()
		rep := chaosRunner.Report()
		fmt.Printf("\n%s", rep.String())
		fmt.Print(faultCounters(cache, rep).Table())
		// Integrity is byte-exactness: every verified hit matched the
		// written pattern. RESETs/errors during an active fault window
		// are availability outcomes (the caller refetches), reported
		// separately — a corrupt read is the invariant violation.
		var corrupt int64
		for _, ib := range icBackends {
			corrupt += ib.CorruptReads()
		}
		integrity := 100.0
		if res != nil && res.Hits > 0 {
			integrity = 100 * float64(int64(res.Hits)-corrupt) / float64(res.Hits)
		}
		fmt.Printf("chaos: fault classes landed: %d; corrupt reads: %d/%d (%.2f%% data integrity); availability: %d RESETs, %d errors of %d GETs\n",
			rep.Classes(), corrupt, res.Hits, integrity, res.Resets, res.Errors, res.Gets)
	}
}

// faultCounters folds the chaos report and every layer's fault/defence
// counters into one post-run snapshot.
func faultCounters(cache *infinicache.Cache, rep chaos.Report) stats.FaultCounters {
	fc := stats.FaultCounters{
		Reclaims:     rep.Reclaimed,
		SeveredConns: rep.Severed,
	}
	for _, n := range rep.Injected {
		fc.FaultsInjected += n
	}
	dep := cache.Deployment()
	for _, p := range dep.Proxies {
		st := p.Stats()
		fc.ChecksumFailures += st.ChecksumFailures.Load()
		fc.CorruptChunks += st.CorruptLost.Load()
		fc.HedgedGets += st.HedgedGets.Load()
		fc.HedgeWins += st.HedgeWins.Load()
		fc.BreakerTrips += st.BreakerTrips.Load()
		fc.DegradedGets += st.DegradedGets.Load()
		fc.Repairs += st.Repairs.Load()
	}
	for _, cl := range dep.Clients() {
		st := cl.Stats()
		fc.ChecksumFailures += st.ChecksumFailures.Load()
		fc.Recoveries += st.Recoveries.Load()
	}
	return fc
}

// churnEvent is one membership change scheduled at a virtual-time
// offset from the replay start. Positive delta adds proxies; negative
// removes the newest ones.
type churnEvent struct {
	at    time.Duration
	delta int
}

// parseChurn parses "30ms:+1,2s:-1" into a schedule sorted by offset.
func parseChurn(spec string) ([]churnEvent, error) {
	if spec == "" {
		return nil, nil
	}
	var events []churnEvent
	for _, part := range strings.Split(spec, ",") {
		at, delta, ok := strings.Cut(strings.TrimSpace(part), ":")
		if !ok {
			return nil, fmt.Errorf("entry %q: want OFFSET:±N", part)
		}
		d, err := time.ParseDuration(at)
		if err != nil || d < 0 {
			return nil, fmt.Errorf("entry %q: bad offset %q", part, at)
		}
		n, err := strconv.Atoi(delta)
		if err != nil || n == 0 {
			return nil, fmt.Errorf("entry %q: bad delta %q (want non-zero ±N)", part, delta)
		}
		events = append(events, churnEvent{at: d, delta: n})
	}
	sort.Slice(events, func(i, j int) bool { return events[i].at < events[j].at })
	return events, nil
}

// runChurn fires the schedule on the deployment clock: each event adds
// or removes |delta| proxies (removal picks the newest member, never
// the last one standing).
func runChurn(dep *core.Deployment, clk vclock.Clock, events []churnEvent) {
	start := clk.Now()
	for _, ev := range events {
		if d := ev.at - clk.Since(start); d > 0 {
			<-clk.After(d)
		}
		for i := 0; i < ev.delta; i++ {
			px, err := dep.AddProxy()
			if err != nil {
				log.Printf("churn: add proxy: %v", err)
				continue
			}
			fmt.Printf("churn: +proxy %s (epoch v%d)\n", px.Addr(), dep.Epoch().Version())
		}
		for i := 0; i > ev.delta; i-- {
			infos := dep.ProxyInfos()
			if len(infos) < 2 {
				log.Print("churn: refusing to remove the last proxy")
				break
			}
			addr := infos[len(infos)-1].Addr
			if err := dep.RemoveProxy(addr); err != nil {
				log.Printf("churn: remove proxy %s: %v", addr, err)
				continue
			}
			fmt.Printf("churn: -proxy %s (epoch v%d)\n", addr, dep.Epoch().Version())
		}
	}
}
