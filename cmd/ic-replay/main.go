// ic-replay replays a trace open-loop against a pluggable cache
// backend and prints a Figure 11/13-style report: per-outcome latency
// percentiles measured from each request's scheduled arrival, hit
// ratio, and backend cost.
//
// Usage:
//
//	ic-replay -trace trace.csv [-format csv|ibmdocker|azure]
//	          [-backend infinicache|redis|dummy]
//	          [-speedup 60] [-sessions 8] [-batch 8] [-size-cap 1048576]
//	          [-preload] [-no-insert]
//	          [-nodes 20] [-mem 1536] [-d 10] [-p 2] [-warm 1m]
//	          [-backup 5m] [-hot bytes] [-hot-max bytes]
//	          [-timescale 0.01] [-shards 1] [-redis-mem bytes]
//	          [-instance cache.r5.large] [-seed 1]
//
// Without -trace, a canonical synthetic trace of -hours hours is
// generated (the same generator as ic-sim, so results line up).
// -speedup divides trace inter-arrival times; 0 disables pacing and
// replays as fast as the sessions drain. -timescale additionally
// compresses the infinicache/redis backends' virtual clock, which
// speeds up the replay AND every deployment timer (warm-ups, billing,
// reclamation) coherently — use -speedup to change only the offered
// load.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strings"
	"time"

	"infinicache"
	"infinicache/internal/exps"
	"infinicache/internal/replay"
	"infinicache/internal/vclock"
	"infinicache/internal/workload"
)

func main() {
	traceFile := flag.String("trace", "", "trace file to replay (default: synthetic)")
	format := flag.String("format", "csv",
		"trace format: "+strings.Join(workload.Formats(), ", "))
	hours := flag.Int("hours", 1, "synthetic trace length (ignored with -trace)")
	backend := flag.String("backend", "infinicache", "backend: infinicache, redis, dummy")
	speedup := flag.Float64("speedup", 1, "replay speed factor (0 = unpaced)")
	sessions := flag.Int("sessions", 8, "concurrent client sessions")
	batch := flag.Int("batch", 1, "MGet burst cap for queued requests (>= 2 enables batching)")
	sizeCap := flag.Int64("size-cap", 0, "clamp object sizes to this many bytes (0 = off)")
	preload := flag.Bool("preload", false, "bulk-insert every distinct object before replaying")
	noInsert := flag.Bool("no-insert", false, "disable GET-upon-miss insertion")
	seed := flag.Int64("seed", 1, "random seed")

	nodes := flag.Int("nodes", 20, "infinicache: Lambda pool size")
	mem := flag.Int("mem", 1536, "infinicache: Lambda memory MB")
	d := flag.Int("d", 10, "infinicache: data shards")
	p := flag.Int("p", 2, "infinicache: parity shards")
	warm := flag.Duration("warm", time.Minute, "infinicache: T_warm (0 disables)")
	backup := flag.Duration("backup", 5*time.Minute, "infinicache: T_bak (0 disables)")
	hot := flag.Int64("hot", 0, "infinicache: proxy hot-tier bytes (0 disables)")
	hotMax := flag.Int64("hot-max", 0, "infinicache: hot-tier admission cap (0 = 1 MiB)")
	timescale := flag.Float64("timescale", 0, "virtual clock scale for infinicache/redis (0.01 = 100x faster; 0 = real time)")

	shards := flag.Int("shards", 1, "redis: number of cache servers")
	redisMem := flag.Int64("redis-mem", 4<<30, "redis: memory bytes per shard")
	instance := flag.String("instance", "cache.r5.large", "redis: instance type for pricing")
	flag.Parse()

	var trace *workload.Trace
	if *traceFile != "" {
		fm, err := workload.ParseFormat(*format)
		if err != nil {
			log.Fatal(err)
		}
		f, err := os.Open(*traceFile)
		if err != nil {
			log.Fatal(err)
		}
		trace, err = workload.ReadTrace(fm, f)
		f.Close()
		if err != nil {
			log.Fatal(err)
		}
	} else {
		trace = exps.CanonicalTrace(*hours, *seed)
	}
	st := trace.ComputeStats()
	fmt.Printf("trace: %d records, %d objects, WSS %.1f MB, %.0f GETs/hour\n",
		st.Records, st.DistinctObjects, float64(st.WorkingSetBytes)/(1<<20), st.GetsPerHour)

	var clk vclock.Clock = vclock.NewReal()
	if *timescale > 0 {
		clk = vclock.NewScaled(*timescale)
	}

	var b replay.Backend
	switch *backend {
	case "dummy":
		b = replay.NewDummy()
	case "redis":
		rb, err := replay.NewRedis(replay.RedisConfig{
			Clock:        clk,
			Shards:       *shards,
			MemoryBytes:  *redisMem,
			InstanceType: *instance,
		})
		if err != nil {
			log.Fatal(err)
		}
		b = rb
	case "infinicache":
		opts := []infinicache.Option{
			infinicache.WithNodesPerProxy(*nodes),
			infinicache.WithNodeMemoryMB(*mem),
			infinicache.WithShards(*d, *p),
			infinicache.WithWarmupInterval(*warm),
			infinicache.WithBackupInterval(*backup),
			infinicache.WithSeed(*seed),
		}
		if *hot > 0 {
			opts = append(opts, infinicache.WithHotTier(*hot))
			if *hotMax > 0 {
				opts = append(opts, infinicache.WithHotTierMaxObject(*hotMax))
			}
		}
		if *timescale > 0 {
			opts = append(opts, infinicache.WithTimeScale(*timescale))
		}
		cache, err := infinicache.New(opts...)
		if err != nil {
			log.Fatal(err)
		}
		defer cache.Close()
		clk = cache.Clock()
		ib, err := replay.NewInfiniCache(cache)
		if err != nil {
			log.Fatal(err)
		}
		b = ib
	default:
		log.Fatalf("unknown backend %q (want infinicache, redis, or dummy)", *backend)
	}
	defer b.Close()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	if *preload {
		n, err := replay.Preload(ctx, b, trace.Records, *sizeCap, max(*batch, 16))
		if err != nil {
			log.Fatalf("preload: %v", err)
		}
		fmt.Printf("preloaded %d objects\n", n)
	}

	cfg := replay.Config{
		Clock:          clk,
		Speedup:        *speedup,
		Sessions:       *sessions,
		Batch:          *batch,
		SizeCap:        *sizeCap,
		NoInsertOnMiss: *noInsert,
	}
	if *speedup == 0 {
		cfg.Speedup = -1 // CLI convention: 0 means unpaced
	}
	fmt.Printf("replaying against %s (%d sessions, speedup %v)...\n\n", *backend, *sessions, *speedup)

	res, err := replay.Run(ctx, cfg, trace, b)
	if res != nil {
		fmt.Print(res.Summary())
	}
	if err != nil {
		log.Fatalf("replay interrupted: %v", err)
	}
}
